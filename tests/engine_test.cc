#include "dbtf/engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "dbtf/dbtf.h"
#include "dbtf/session.h"
#include "dist/fault.h"
#include "generator/generator.h"
#include "modelselect/rank_selection.h"

namespace dbtf {
namespace {

DbtfConfig SmallConfig(std::int64_t rank = 4) {
  DbtfConfig config;
  config.rank = rank;
  config.max_iterations = 8;
  config.num_initial_sets = 2;
  config.num_partitions = 4;
  config.seed = 17;
  config.cluster.num_machines = 2;
  config.cluster.num_threads = 2;
  return config;
}

PlantedTensor MakePlanted(std::int64_t dim, std::int64_t rank,
                          std::uint64_t seed) {
  PlantedSpec spec;
  spec.dim_i = dim;
  spec.dim_j = dim + 4;
  spec.dim_k = dim - 4;
  spec.rank = rank;
  spec.factor_density = 0.18;
  spec.seed = seed;
  return GeneratePlanted(spec).value();
}

void ExpectSameComm(const CommSnapshot& got, const CommSnapshot& want) {
  EXPECT_EQ(got.shuffle_bytes, want.shuffle_bytes);
  EXPECT_EQ(got.broadcast_bytes, want.broadcast_bytes);
  EXPECT_EQ(got.collect_bytes, want.collect_bytes);
  EXPECT_EQ(got.shuffle_events, want.shuffle_events);
  EXPECT_EQ(got.broadcast_events, want.broadcast_events);
  EXPECT_EQ(got.collect_events, want.collect_events);
}

/// The tentpole acceptance criterion: on a fixed seed, a session run and the
/// Dbtf::Factorize wrapper produce bitwise-identical factors and an
/// identical communication snapshot.
TEST(Session, MatchesWrapperBitwiseAndOnTheLedger) {
  const PlantedTensor p = MakePlanted(24, 4, 41);
  const DbtfConfig config = SmallConfig();

  auto wrapper = Dbtf::Factorize(p.tensor, config);
  ASSERT_TRUE(wrapper.ok()) << wrapper.status().ToString();

  auto session = Session::Create(p.tensor, config);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto direct = (*session)->Factorize(config);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  EXPECT_EQ(direct->a, wrapper->a);
  EXPECT_EQ(direct->b, wrapper->b);
  EXPECT_EQ(direct->c, wrapper->c);
  EXPECT_EQ(direct->iteration_errors, wrapper->iteration_errors);
  EXPECT_EQ(direct->final_error, wrapper->final_error);
  EXPECT_EQ(direct->cells_changed, wrapper->cells_changed);
  EXPECT_EQ(direct->cache_entries, wrapper->cache_entries);
  EXPECT_EQ(direct->cache_bytes, wrapper->cache_bytes);
  ExpectSameComm(direct->comm, wrapper->comm);
}

/// The ledger is charged by construction at the routing layer; its totals
/// must match the paper's closed forms (Lemmas 6-7) computed from the run's
/// own counts.
TEST(Session, LedgerMatchesAnalyticFormulas) {
  const PlantedTensor p = MakePlanted(24, 4, 42);
  const DbtfConfig config = SmallConfig();
  auto session = Session::Create(p.tensor, config);
  ASSERT_TRUE(session.ok());
  auto r = (*session)->Factorize(config);
  ASSERT_TRUE(r.ok());

  // Shuffle: every non-zero of the three unfoldings crosses the wire once
  // as a 3-coordinate record.
  EXPECT_EQ(r->comm.shuffle_events, 1);
  EXPECT_EQ(r->comm.shuffle_bytes,
            3 * p.tensor.NumNonZeros() *
                static_cast<std::int64_t>(3 * sizeof(std::uint32_t)));

  // One factor update = 1 broadcast event + R collect events. Iteration 1
  // runs L sets x 3 modes; iterations 2..T run 3 modes each.
  const std::int64_t updates =
      3 * (config.num_initial_sets + (r->iterations_run - 1));
  EXPECT_EQ(r->comm.broadcast_events, updates);
  EXPECT_EQ(r->comm.collect_events, updates * config.rank);

  // Collect volume: 2 errors x rows x partitions per column (Lemma 7).
  const std::int64_t rows[3] = {p.tensor.dim_i(), p.tensor.dim_j(),
                                p.tensor.dim_k()};
  std::int64_t per_iteration = 0;
  for (int mode = 0; mode < 3; ++mode) {
    per_iteration += (*session)->partitions_used(static_cast<Mode>(mode + 1)) *
                     rows[mode] * config.rank * 2 *
                     static_cast<std::int64_t>(sizeof(std::int64_t));
  }
  EXPECT_EQ(r->comm.collect_bytes, (updates / 3) * per_iteration);
}

/// A session partitions and shuffles once; later runs reuse the resident
/// partitions. Each run still *reports* the shuffle (so results stay
/// comparable), while the raw cluster ledger records it exactly once.
TEST(Session, ReuseAcrossRanksShufflesOnce) {
  const PlantedTensor p = MakePlanted(24, 4, 43);
  DbtfConfig config = SmallConfig();
  auto session = Session::Create(p.tensor, config);
  ASSERT_TRUE(session.ok());

  for (const std::int64_t rank : {3, 5}) {
    config.rank = rank;
    auto from_session = (*session)->Factorize(config);
    auto from_wrapper = Dbtf::Factorize(p.tensor, config);
    ASSERT_TRUE(from_session.ok() && from_wrapper.ok());
    // Reuse is invisible to the result: factors and reported traffic are
    // identical to a from-scratch factorization.
    EXPECT_EQ(from_session->a, from_wrapper->a);
    EXPECT_EQ(from_session->b, from_wrapper->b);
    EXPECT_EQ(from_session->c, from_wrapper->c);
    ExpectSameComm(from_session->comm, from_wrapper->comm);
  }
  EXPECT_EQ((*session)->cluster().comm().Snapshot().shuffle_events, 1)
      << "the resident partitions must not be reshuffled between runs";
}

TEST(Session, OwnsAllPartitionStateInWorkers) {
  const PlantedTensor p = MakePlanted(24, 4, 44);
  const DbtfConfig config = SmallConfig();
  auto session = Session::Create(p.tensor, config);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->num_workers(), config.cluster.num_machines);
  EXPECT_EQ((*session)->cluster().num_attached_workers(),
            config.cluster.num_machines);
}

TEST(Session, RejectsMismatchedPartitioning) {
  const PlantedTensor p = MakePlanted(20, 3, 45);
  DbtfConfig config = SmallConfig(3);
  auto session = Session::Create(p.tensor, config);
  ASSERT_TRUE(session.ok());
  DbtfConfig other = config;
  other.num_partitions = 8;
  EXPECT_EQ((*session)->Factorize(other).status().code(),
            StatusCode::kInvalidArgument);
  other = config;
  other.cluster.num_machines = 3;
  EXPECT_EQ((*session)->Factorize(other).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RunFactorUpdate, RequiresAttachedWorkers) {
  const DbtfConfig config = SmallConfig(2);
  auto cluster = Cluster::Create(config.cluster);
  ASSERT_TRUE(cluster.ok());
  BitMatrix factor(8, 2);
  BitMatrix mf(8, 2);
  BitMatrix ms(8, 2);
  const UnfoldShape shape{8, 8, 8};
  auto r = RunFactorUpdate(cluster->get(), Mode::kOne, shape, &factor, mf, ms,
                           config);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

void ExpectSameFactorsAndErrors(const DbtfResult& got, const DbtfResult& want) {
  EXPECT_EQ(got.a, want.a);
  EXPECT_EQ(got.b, want.b);
  EXPECT_EQ(got.c, want.c);
  EXPECT_EQ(got.iteration_errors, want.iteration_errors);
  EXPECT_EQ(got.final_error, want.final_error);
  EXPECT_EQ(got.cells_changed, want.cells_changed);
}

/// The fault-tolerance acceptance criterion: transient faults absorbed by the
/// routing retry policy leave the result bitwise-identical to the fault-free
/// run — only the recovery ledger shows they ever happened.
TEST(SessionFaults, SeededTransientFaultsAreInvisibleInTheResult) {
  const PlantedTensor p = MakePlanted(24, 4, 47);
  const DbtfConfig config = SmallConfig();
  auto baseline = Dbtf::Factorize(p.tensor, config);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_EQ(baseline->recovery.failed_deliveries, 0)
      << "a fault-free run reports an all-zero recovery ledger";
  EXPECT_EQ(baseline->recovery.machines_lost, 0);

  for (const std::uint64_t seed : {11, 12, 13}) {
    DbtfConfig faulty = config;
    faulty.cluster.fault_plan = FaultPlan::Random(
        seed, config.cluster.num_machines, /*num_transient=*/5,
        /*num_crashes=*/0);
    auto r = Dbtf::Factorize(p.tensor, faulty);
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.status().ToString();
    ExpectSameFactorsAndErrors(*r, *baseline);
    EXPECT_GT(r->recovery.failed_deliveries + r->recovery.recovery_seconds, 0)
        << "seed " << seed << ": the plan never fired";
    EXPECT_EQ(r->recovery.machines_lost, 0);
  }
}

/// Losing one machine permanently mid-update re-provisions its partitions
/// onto the survivor and re-runs the interrupted column — the recovered run
/// is bitwise-identical, and the reshipped bytes ride the CommStats ledger
/// as shuffles.
TEST(SessionFaults, PermanentMachineLossRecoversBitwiseIdentical) {
  const PlantedTensor p = MakePlanted(24, 4, 48);
  const DbtfConfig config = SmallConfig();
  auto baseline = Dbtf::Factorize(p.tensor, config);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  DbtfConfig faulty = config;
  auto plan = FaultPlan::Parse("1:dispatch:crash@3");
  ASSERT_TRUE(plan.ok());
  faulty.cluster.fault_plan = *plan;
  auto r = Dbtf::Factorize(p.tensor, faulty);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectSameFactorsAndErrors(*r, *baseline);

  EXPECT_EQ(r->recovery.machines_lost, 1);
  EXPECT_GT(r->recovery.reprovisions, 0);
  EXPECT_GT(r->recovery.reshipped_bytes, 0);
  EXPECT_EQ(r->comm.shuffle_bytes - baseline->comm.shuffle_bytes,
            r->recovery.reshipped_bytes)
      << "reshipped partitions are priced as shuffles";
  EXPECT_EQ(r->comm.shuffle_events - baseline->comm.shuffle_events,
            r->recovery.reprovisions);
}

/// Random plans mixing transient faults with one permanent loss: the paper's
/// numbers must not depend on which machines survived the run.
TEST(SessionFaults, MixedRandomPlansStayBitwiseIdentical) {
  const PlantedTensor p = MakePlanted(24, 4, 49);
  const DbtfConfig config = SmallConfig();
  auto baseline = Dbtf::Factorize(p.tensor, config);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (const std::uint64_t seed : {21, 22}) {
    DbtfConfig faulty = config;
    faulty.cluster.fault_plan = FaultPlan::Random(
        seed, config.cluster.num_machines, /*num_transient=*/4,
        /*num_crashes=*/1);
    auto r = Dbtf::Factorize(p.tensor, faulty);
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.status().ToString();
    ExpectSameFactorsAndErrors(*r, *baseline);
    EXPECT_EQ(r->recovery.machines_lost, 1) << "seed " << seed;
    EXPECT_GT(r->recovery.reprovisions, 0);
  }
}

/// A fault the retry budget cannot bridge surfaces as a clean kUnavailable —
/// never a hang, never a crash.
TEST(SessionFaults, ExhaustedRetryBudgetSurfacesCleanUnavailable) {
  const PlantedTensor p = MakePlanted(24, 4, 50);
  DbtfConfig faulty = SmallConfig();
  auto plan = FaultPlan::Parse("0:dispatch:transient@1x1000000");
  ASSERT_TRUE(plan.ok());
  faulty.cluster.fault_plan = *plan;
  auto r = Dbtf::Factorize(p.tensor, faulty);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(r.status().message().find("retry budget exhausted"),
            std::string::npos)
      << r.status().ToString();
}

/// The delta-broadcast acceptance criterion: shipping only changed operand
/// columns is invisible in the results — factors, error trajectory, collect
/// and shuffle traffic all match the full-broadcast ablation bitwise — while
/// the broadcast bytes strictly shrink (same number of broadcast *events*).
TEST(DeltaBroadcast, BitwiseIdenticalWithStrictlyFewerBroadcastBytes) {
  const PlantedTensor p = MakePlanted(24, 4, 51);
  DbtfConfig with_delta = SmallConfig();
  ASSERT_TRUE(with_delta.enable_delta_broadcast) << "delta is the default";
  DbtfConfig full = with_delta;
  full.enable_delta_broadcast = false;

  auto delta_run = Dbtf::Factorize(p.tensor, with_delta);
  auto full_run = Dbtf::Factorize(p.tensor, full);
  ASSERT_TRUE(delta_run.ok()) << delta_run.status().ToString();
  ASSERT_TRUE(full_run.ok()) << full_run.status().ToString();

  ExpectSameFactorsAndErrors(*delta_run, *full_run);
  EXPECT_EQ(delta_run->comm.broadcast_events, full_run->comm.broadcast_events);
  EXPECT_EQ(delta_run->comm.collect_bytes, full_run->comm.collect_bytes);
  EXPECT_EQ(delta_run->comm.collect_events, full_run->comm.collect_events);
  EXPECT_EQ(delta_run->comm.shuffle_bytes, full_run->comm.shuffle_bytes);
  EXPECT_LT(delta_run->comm.broadcast_bytes, full_run->comm.broadcast_bytes)
      << "delta broadcasts must strictly reduce the broadcast volume";
}

/// Deltas and recovery compose: under a fault plan with transient faults and
/// one permanent machine loss, the delta run still matches the full-broadcast
/// run (and hence the fault-free baseline) bitwise. The recovery rebroadcast
/// re-sends an already-applied delta, which workers skip by generation.
TEST(DeltaBroadcast, BitwiseIdenticalUnderFaultPlan) {
  const PlantedTensor p = MakePlanted(24, 4, 52);
  DbtfConfig with_delta = SmallConfig();
  auto plan =
      FaultPlan::Parse("0:broadcast:transient@2,1:dispatch:crash@4");
  ASSERT_TRUE(plan.ok());
  with_delta.cluster.fault_plan = *plan;
  DbtfConfig full = with_delta;
  full.enable_delta_broadcast = false;

  auto baseline = Dbtf::Factorize(p.tensor, SmallConfig());
  auto delta_run = Dbtf::Factorize(p.tensor, with_delta);
  auto full_run = Dbtf::Factorize(p.tensor, full);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_TRUE(delta_run.ok()) << delta_run.status().ToString();
  ASSERT_TRUE(full_run.ok()) << full_run.status().ToString();

  ExpectSameFactorsAndErrors(*delta_run, *baseline);
  ExpectSameFactorsAndErrors(*delta_run, *full_run);
  EXPECT_EQ(delta_run->recovery.machines_lost, 1);
  EXPECT_LT(delta_run->comm.broadcast_bytes, full_run->comm.broadcast_bytes);
}

/// On a bandwidth-starved cluster the broadcast bytes dominate the virtual
/// makespan, so shipping deltas must shrink it. driver_seconds (the network
/// share) is fully deterministic; the compute share rides along.
TEST(DeltaBroadcast, ImprovesVirtualMakespanWhenBandwidthBound) {
  const PlantedTensor p = MakePlanted(24, 4, 53);
  DbtfConfig with_delta = SmallConfig();
  with_delta.cluster.network_bandwidth_bytes_per_second = 1e4;
  DbtfConfig full = with_delta;
  full.enable_delta_broadcast = false;

  auto delta_run = Dbtf::Factorize(p.tensor, with_delta);
  auto full_run = Dbtf::Factorize(p.tensor, full);
  ASSERT_TRUE(delta_run.ok()) << delta_run.status().ToString();
  ASSERT_TRUE(full_run.ok()) << full_run.status().ToString();

  EXPECT_NEAR(delta_run->driver_seconds + delta_run->machine_seconds,
              delta_run->virtual_seconds, 1e-9);
  EXPECT_LT(delta_run->driver_seconds, full_run->driver_seconds)
      << "fewer broadcast bytes must mean less simulated network time";
  EXPECT_LT(delta_run->virtual_seconds, full_run->virtual_seconds);
}

// --- Checkpoint/resume ------------------------------------------------------

std::string CkptDir(const std::string& name) {
  static int counter = 0;
  const std::string dir = ::testing::TempDir() + "/engine_ckpt_" + name + "_" +
                          std::to_string(counter++);
  // The names repeat across test-binary runs; leftovers from a previous run
  // would be loaded as resumable snapshots, so start from a clean slate.
  std::filesystem::remove_all(dir);
  return dir;
}

DbtfConfig CheckpointedConfig(const std::string& dir) {
  DbtfConfig config = SmallConfig();
  config.checkpoint_dir = dir;
  config.checkpoint_every_columns = 1;
  return config;
}

/// Checkpointing must be invisible in the result: same factors, errors,
/// cache stats, and ledger as a run without it — only snapshots appear on
/// disk.
TEST(Resume, CheckpointingIsInvisibleInTheResult) {
  const PlantedTensor p = MakePlanted(24, 4, 54);
  auto baseline = Dbtf::Factorize(p.tensor, SmallConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  const std::string dir = CkptDir("invisible");
  auto checkpointed = Dbtf::Factorize(p.tensor, CheckpointedConfig(dir));
  ASSERT_TRUE(checkpointed.ok()) << checkpointed.status().ToString();

  ExpectSameFactorsAndErrors(*checkpointed, *baseline);
  ExpectSameComm(checkpointed->comm, baseline->comm);
  EXPECT_EQ(checkpointed->cache_entries, baseline->cache_entries);
  EXPECT_EQ(checkpointed->cache_bytes, baseline->cache_bytes);
  EXPECT_EQ(checkpointed->resumed_from_iteration, 0);
  // Cadence 1 writes one snapshot per completed column: L sets x 3 modes x R
  // columns in iteration 1, then 3 x R per later iteration.
  const DbtfConfig config = SmallConfig();
  const std::int64_t columns =
      config.rank * 3 *
      (config.num_initial_sets + (checkpointed->iterations_run - 1));
  EXPECT_EQ(checkpointed->checkpoints_written, columns);

  auto store = CheckpointStore::Open(dir, config.checkpoint_retention);
  ASSERT_TRUE(store.ok());
  const std::vector<std::int64_t> sequences = store->ListSequences();
  EXPECT_EQ(sequences.size(),
            static_cast<std::size_t>(config.checkpoint_retention));
  EXPECT_EQ(sequences.back(), columns);
}

/// The tentpole acceptance criterion: kill the run at assorted column
/// boundaries (mid-mode, mode boundary, set boundary, a later iteration),
/// resume in a fresh session, and get a bitwise-identical result — factors,
/// error trajectory, cache stats, and the full communication ledger.
TEST(Resume, HaltAndResumeMatchesUninterruptedBitwise) {
  const PlantedTensor p = MakePlanted(24, 4, 55);
  auto baseline = Dbtf::Factorize(p.tensor, SmallConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (const std::int64_t halt_at : {1, 4, 7, 12, 24, 30}) {
    const std::string dir = CkptDir("halt");
    DbtfConfig interrupted = CheckpointedConfig(dir);
    interrupted.halt_after_columns = halt_at;
    auto killed = Dbtf::Factorize(p.tensor, interrupted);
    ASSERT_FALSE(killed.ok()) << "halt at " << halt_at << " never fired";
    EXPECT_EQ(killed.status().code(), StatusCode::kResourceExhausted);

    DbtfConfig resume = CheckpointedConfig(dir);
    resume.resume = true;
    auto resumed = Dbtf::Factorize(p.tensor, resume);
    ASSERT_TRUE(resumed.ok())
        << "halt at " << halt_at << ": " << resumed.status().ToString();
    ExpectSameFactorsAndErrors(*resumed, *baseline);
    ExpectSameComm(resumed->comm, baseline->comm);
    EXPECT_EQ(resumed->cache_entries, baseline->cache_entries);
    EXPECT_EQ(resumed->cache_bytes, baseline->cache_bytes);
    EXPECT_EQ(resumed->iterations_run, baseline->iterations_run);
    EXPECT_EQ(resumed->converged, baseline->converged);
    EXPECT_GE(resumed->resumed_from_iteration, 1) << "halt at " << halt_at;
    // The count is cumulative across the lineage: the interrupted run wrote
    // one snapshot per column up to the halt, and the resumed run continues.
    EXPECT_GT(resumed->checkpoints_written, halt_at) << "halt at " << halt_at;
  }
}

/// With the default cadence (one snapshot per completed mode update), a halt
/// between snapshots resumes from an earlier column and replays the gap —
/// exercising the finalize-a-completed-mode restore path (next_column ==
/// rank) — still bitwise-identical.
TEST(Resume, DefaultCadenceReplaysTheGapAfterTheNewestSnapshot) {
  const PlantedTensor p = MakePlanted(24, 4, 56);
  auto baseline = Dbtf::Factorize(p.tensor, SmallConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  const std::string dir = CkptDir("cadence");
  DbtfConfig interrupted = SmallConfig();
  interrupted.checkpoint_dir = dir;  // checkpoint_every_columns stays 0
  interrupted.halt_after_columns = 6;  // newest snapshot is at column 4
  auto killed = Dbtf::Factorize(p.tensor, interrupted);
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.status().code(), StatusCode::kResourceExhausted);

  DbtfConfig resume = SmallConfig();
  resume.checkpoint_dir = dir;
  resume.resume = true;
  auto resumed = Dbtf::Factorize(p.tensor, resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectSameFactorsAndErrors(*resumed, *baseline);
  ExpectSameComm(resumed->comm, baseline->comm);
  EXPECT_GE(resumed->resumed_from_iteration, 1);
}

/// Resume composes with fault injection: the restored delivery counters and
/// dead set let the resumed run replay the plan's schedule exactly, whether
/// the crash fires before the halt (restore a dead machine) or after the
/// resume (replay the pending fault). Factors, errors, and the recovery
/// ledger match the uninterrupted faulty run.
TEST(Resume, ReplaysTheFaultScheduleAcrossTheCut) {
  const PlantedTensor p = MakePlanted(24, 4, 57);
  DbtfConfig faulty = SmallConfig();
  auto plan = FaultPlan::Parse("1:dispatch:crash@4,0:collect:transient@3x2");
  ASSERT_TRUE(plan.ok());
  faulty.cluster.fault_plan = *plan;
  auto baseline = Dbtf::Factorize(p.tensor, faulty);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->recovery.machines_lost, 1);

  // halt 2: both faults still pending at the cut; halt 13: machine 1 is
  // already dead and its partitions live on the survivor.
  for (const std::int64_t halt_at : {2, 13}) {
    const std::string dir = CkptDir("faulty");
    DbtfConfig interrupted = faulty;
    interrupted.checkpoint_dir = dir;
    interrupted.checkpoint_every_columns = 1;
    interrupted.halt_after_columns = halt_at;
    auto killed = Dbtf::Factorize(p.tensor, interrupted);
    ASSERT_FALSE(killed.ok()) << "halt at " << halt_at << " never fired";
    EXPECT_EQ(killed.status().code(), StatusCode::kResourceExhausted);

    DbtfConfig resume = faulty;
    resume.checkpoint_dir = dir;
    resume.checkpoint_every_columns = 1;
    resume.resume = true;
    auto resumed = Dbtf::Factorize(p.tensor, resume);
    ASSERT_TRUE(resumed.ok())
        << "halt at " << halt_at << ": " << resumed.status().ToString();
    ExpectSameFactorsAndErrors(*resumed, *baseline);
    EXPECT_EQ(resumed->recovery.failed_deliveries,
              baseline->recovery.failed_deliveries)
        << "halt at " << halt_at;
    EXPECT_EQ(resumed->recovery.retries, baseline->recovery.retries);
    EXPECT_EQ(resumed->recovery.machines_lost,
              baseline->recovery.machines_lost);
    EXPECT_EQ(resumed->recovery.reprovisions, baseline->recovery.reprovisions);
    EXPECT_EQ(resumed->recovery.reshipped_bytes,
              baseline->recovery.reshipped_bytes);
  }
}

/// Resume with the full-broadcast ablation: the shadows still checkpoint and
/// restore (they track factor content either way), and the resumed run
/// matches bitwise including the ledger.
TEST(Resume, WorksWithDeltaBroadcastDisabled) {
  const PlantedTensor p = MakePlanted(24, 4, 58);
  DbtfConfig full = SmallConfig();
  full.enable_delta_broadcast = false;
  auto baseline = Dbtf::Factorize(p.tensor, full);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  const std::string dir = CkptDir("fullbcast");
  DbtfConfig interrupted = full;
  interrupted.checkpoint_dir = dir;
  interrupted.checkpoint_every_columns = 1;
  interrupted.halt_after_columns = 5;
  auto killed = Dbtf::Factorize(p.tensor, interrupted);
  ASSERT_FALSE(killed.ok());

  DbtfConfig resume = full;
  resume.checkpoint_dir = dir;
  resume.resume = true;
  auto resumed = Dbtf::Factorize(p.tensor, resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectSameFactorsAndErrors(*resumed, *baseline);
  ExpectSameComm(resumed->comm, baseline->comm);
}

/// Resuming on the same session object (workers still hold the factor
/// content at matching generations) takes the generation-skip path of worker
/// rehydration and must land on the same result as a fresh-process resume.
TEST(Resume, SameSessionResumeMatchesFreshSessionResume) {
  const PlantedTensor p = MakePlanted(24, 4, 59);
  auto baseline = Dbtf::Factorize(p.tensor, SmallConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  const std::string dir = CkptDir("samesession");
  DbtfConfig interrupted = CheckpointedConfig(dir);
  interrupted.halt_after_columns = 9;

  auto session = Session::Create(p.tensor, interrupted);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto killed = (*session)->Factorize(interrupted);
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.status().code(), StatusCode::kResourceExhausted);

  DbtfConfig resume = CheckpointedConfig(dir);
  resume.resume = true;
  auto resumed = (*session)->Factorize(resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectSameFactorsAndErrors(*resumed, *baseline);
  ExpectSameComm(resumed->comm, baseline->comm);
  EXPECT_GE(resumed->resumed_from_iteration, 1);
}

/// Corrupting the newest snapshot must not sink the resume: the store falls
/// back to the next-newest valid one, the run replays the extra columns, and
/// the result is still bitwise-identical.
TEST(Resume, CorruptNewestSnapshotFallsBackEndToEnd) {
  const PlantedTensor p = MakePlanted(24, 4, 60);
  auto baseline = Dbtf::Factorize(p.tensor, SmallConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  const std::string dir = CkptDir("corrupt");
  DbtfConfig interrupted = CheckpointedConfig(dir);
  interrupted.halt_after_columns = 7;
  auto killed = Dbtf::Factorize(p.tensor, interrupted);
  ASSERT_FALSE(killed.ok());

  auto store = CheckpointStore::Open(dir, interrupted.checkpoint_retention);
  ASSERT_TRUE(store.ok());
  const std::vector<std::int64_t> sequences = store->ListSequences();
  ASSERT_GE(sequences.size(), 2u);
  const std::string manifest =
      dir + "/ckpt-" + std::to_string(sequences.back()) + "/MANIFEST";
  std::string bytes;
  {
    std::ifstream in(manifest, std::ios::binary);
    ASSERT_TRUE(in.is_open()) << manifest;
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x01;
  {
    std::ofstream out(manifest, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  DbtfConfig resume = CheckpointedConfig(dir);
  resume.resume = true;
  auto resumed = Dbtf::Factorize(p.tensor, resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectSameFactorsAndErrors(*resumed, *baseline);
  ExpectSameComm(resumed->comm, baseline->comm);
}

/// A snapshot binds to its run: resuming with a different semantic
/// configuration or a different tensor is refused up front.
TEST(Resume, RejectsMismatchedConfigOrTensor) {
  const PlantedTensor p = MakePlanted(24, 4, 61);
  const std::string dir = CkptDir("mismatch");
  DbtfConfig interrupted = CheckpointedConfig(dir);
  interrupted.halt_after_columns = 3;
  ASSERT_FALSE(Dbtf::Factorize(p.tensor, interrupted).ok());

  DbtfConfig resume = CheckpointedConfig(dir);
  resume.resume = true;
  resume.seed = 99;  // a different trajectory entirely
  EXPECT_EQ(Dbtf::Factorize(p.tensor, resume).status().code(),
            StatusCode::kFailedPrecondition);

  resume.seed = interrupted.seed;
  const PlantedTensor other = MakePlanted(24, 4, 62);
  EXPECT_EQ(Dbtf::Factorize(other.tensor, resume).status().code(),
            StatusCode::kFailedPrecondition);

  // Operational knobs (cadence, halts) are not part of the identity.
  resume.checkpoint_every_columns = 2;
  auto ok = Dbtf::Factorize(p.tensor, resume);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

/// Resume against an empty checkpoint directory is a clean kNotFound, not a
/// silent fresh start.
TEST(Resume, WithoutSnapshotsIsNotFound) {
  const PlantedTensor p = MakePlanted(24, 4, 63);
  DbtfConfig resume = CheckpointedConfig(CkptDir("empty"));
  resume.resume = true;
  EXPECT_EQ(Dbtf::Factorize(p.tensor, resume).status().code(),
            StatusCode::kNotFound);
}

// --- Transport equivalence --------------------------------------------------
//
// The transport-seam acceptance criterion: the socket transport (one
// dbtf-worker OS process per machine, wire-serialized messages) and the
// in-process transport produce bitwise-identical factors, error
// trajectories, and comm + recovery ledgers. The ledgers match by
// construction — both transports charge the same WireBytes() of the same
// messages at the same routing layer — and these tests pin that construction
// down end to end.

void ExpectSameRecovery(const RecoveryStats& got, const RecoveryStats& want) {
  EXPECT_EQ(got.failed_deliveries, want.failed_deliveries);
  EXPECT_EQ(got.retries, want.retries);
  EXPECT_EQ(got.machines_lost, want.machines_lost);
  EXPECT_EQ(got.reprovisions, want.reprovisions);
  EXPECT_EQ(got.reshipped_bytes, want.reshipped_bytes);
  EXPECT_EQ(got.recovery_seconds, want.recovery_seconds);
}

void ExpectTransportEquivalent(const DbtfConfig& base) {
  DbtfConfig inproc = base;
  inproc.cluster.transport.kind = TransportKind::kInProcess;
  DbtfConfig socket = base;
  socket.cluster.transport.kind = TransportKind::kSocket;

  const PlantedTensor p = MakePlanted(24, 4, 71);
  auto oracle = Dbtf::Factorize(p.tensor, inproc);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  auto remote = Dbtf::Factorize(p.tensor, socket);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  ExpectSameFactorsAndErrors(*remote, *oracle);
  ExpectSameComm(remote->comm, oracle->comm);
  ExpectSameRecovery(remote->recovery, oracle->recovery);
  EXPECT_EQ(remote->iterations_run, oracle->iterations_run);
  EXPECT_EQ(remote->converged, oracle->converged);
  EXPECT_EQ(remote->cache_entries, oracle->cache_entries);
  EXPECT_EQ(remote->cache_bytes, oracle->cache_bytes);
}

TEST(TransportEquivalence, SocketMatchesInprocWithDeltaBroadcasts) {
  DbtfConfig config = SmallConfig();
  config.enable_delta_broadcast = true;
  ExpectTransportEquivalent(config);
}

TEST(TransportEquivalence, SocketMatchesInprocWithFullBroadcasts) {
  DbtfConfig config = SmallConfig();
  config.enable_delta_broadcast = false;
  ExpectTransportEquivalent(config);
}

/// Under a deterministic fault plan (transient faults plus a permanent
/// crash) both transports take the identical retry/recovery path: the
/// injector runs driver-side before the endpoint is touched, so the same
/// deliveries fail on the same attempt no matter which transport would have
/// carried them.
TEST(TransportEquivalence, SocketMatchesInprocUnderAFaultPlan) {
  DbtfConfig config = SmallConfig();
  auto plan = FaultPlan::Parse("0:broadcast:transient@2,1:dispatch:crash@4");
  ASSERT_TRUE(plan.ok());
  config.cluster.fault_plan = *plan;
  ExpectTransportEquivalent(config);
}

/// The transport is excluded from the checkpoint's config fingerprint on
/// purpose: a snapshot written under one transport resumes under the other,
/// bitwise.
TEST(TransportEquivalence, CheckpointsResumeAcrossTransports) {
  const PlantedTensor p = MakePlanted(24, 4, 72);
  auto baseline = Dbtf::Factorize(p.tensor, SmallConfig());
  ASSERT_TRUE(baseline.ok());

  const std::string dir = CkptDir("cross_transport");
  DbtfConfig interrupted = CheckpointedConfig(dir);
  interrupted.cluster.transport.kind = TransportKind::kInProcess;
  interrupted.halt_after_columns = 7;
  ASSERT_EQ(Dbtf::Factorize(p.tensor, interrupted).status().code(),
            StatusCode::kResourceExhausted);

  DbtfConfig resume = CheckpointedConfig(dir);
  resume.cluster.transport.kind = TransportKind::kSocket;
  resume.resume = true;
  auto resumed = Dbtf::Factorize(p.tensor, resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectSameFactorsAndErrors(*resumed, *baseline);
  ExpectSameComm(resumed->comm, baseline->comm);
  EXPECT_GE(resumed->resumed_from_iteration, 1);
}

// --- Kernel backend ablation ------------------------------------------------

/// The kernel-layer acceptance criterion: the SIMD dispatch is a pure
/// throughput knob. A run forced onto the portable scalar oracle and a run
/// on the auto-dispatched backend produce bitwise-identical factors, error
/// trajectories, and comm/recovery ledgers. (On a machine without SIMD
/// support auto resolves to portable and the comparison is trivially true —
/// the CI kernels matrix covers both shapes.)
TEST(KernelAblation, PortableAndAutoAreBitwiseIdentical) {
  const PlantedTensor p = MakePlanted(24, 4, 81);
  DbtfConfig portable = SmallConfig();
  portable.kernel_backend = KernelBackend::kPortable;
  DbtfConfig autod = SmallConfig();
  autod.kernel_backend = KernelBackend::kAuto;

  auto portable_run = Dbtf::Factorize(p.tensor, portable);
  auto auto_run = Dbtf::Factorize(p.tensor, autod);
  ASSERT_TRUE(portable_run.ok()) << portable_run.status().ToString();
  ASSERT_TRUE(auto_run.ok()) << auto_run.status().ToString();

  EXPECT_EQ(portable_run->kernel_backend, "portable");
  EXPECT_NE(auto_run->kernel_backend, "auto") << "auto must resolve";
  ExpectSameFactorsAndErrors(*auto_run, *portable_run);
  ExpectSameComm(auto_run->comm, portable_run->comm);
  ExpectSameRecovery(auto_run->recovery, portable_run->recovery);
  EXPECT_EQ(auto_run->iterations_run, portable_run->iterations_run);
  EXPECT_EQ(auto_run->converged, portable_run->converged);
  EXPECT_EQ(auto_run->cache_entries, portable_run->cache_entries);
  EXPECT_EQ(auto_run->cache_bytes, portable_run->cache_bytes);
  EXPECT_EQ(auto_run->cells_changed, portable_run->cells_changed);
}

/// Every individually supported backend (not just auto's pick) matches the
/// portable run, including under a fault plan so the retry/recovery paths
/// execute on SIMD kernels too.
TEST(KernelAblation, EveryCompiledBackendMatchesPortableUnderFaults) {
  const PlantedTensor p = MakePlanted(24, 4, 82);
  DbtfConfig base = SmallConfig();
  auto plan = FaultPlan::Parse("0:broadcast:transient@2,1:dispatch:crash@4");
  ASSERT_TRUE(plan.ok());
  base.cluster.fault_plan = *plan;

  DbtfConfig portable = base;
  portable.kernel_backend = KernelBackend::kPortable;
  auto baseline = Dbtf::Factorize(p.tensor, portable);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (const KernelBackend backend : SupportedKernelBackends()) {
    DbtfConfig config = base;
    config.kernel_backend = backend;
    auto run = Dbtf::Factorize(p.tensor, config);
    ASSERT_TRUE(run.ok()) << KernelBackendName(backend) << ": "
                          << run.status().ToString();
    EXPECT_EQ(run->kernel_backend, KernelBackendName(backend));
    ExpectSameFactorsAndErrors(*run, *baseline);
    ExpectSameComm(run->comm, baseline->comm);
    ExpectSameRecovery(run->recovery, baseline->recovery);
  }
}

/// The kernel backend is excluded from the checkpoint's config fingerprint
/// on purpose (like the transport): a snapshot written under the portable
/// backend resumes under the auto-dispatched one, bitwise.
TEST(KernelAblation, CheckpointsResumeAcrossBackends) {
  const PlantedTensor p = MakePlanted(24, 4, 83);
  DbtfConfig baseline_config = SmallConfig();
  baseline_config.kernel_backend = KernelBackend::kPortable;
  auto baseline = Dbtf::Factorize(p.tensor, baseline_config);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  const std::string dir = CkptDir("cross_kernel");
  DbtfConfig interrupted = CheckpointedConfig(dir);
  interrupted.kernel_backend = KernelBackend::kPortable;
  interrupted.halt_after_columns = 7;
  ASSERT_EQ(Dbtf::Factorize(p.tensor, interrupted).status().code(),
            StatusCode::kResourceExhausted);

  DbtfConfig resume = CheckpointedConfig(dir);
  resume.kernel_backend = KernelBackend::kAuto;
  resume.resume = true;
  auto resumed = Dbtf::Factorize(p.tensor, resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectSameFactorsAndErrors(*resumed, *baseline);
  ExpectSameComm(resumed->comm, baseline->comm);
  EXPECT_GE(resumed->resumed_from_iteration, 1);
}

/// The rank scan runs every candidate on one resident session.
TEST(RankSelection, SharesOnePartitionedSession) {
  const PlantedTensor p = MakePlanted(24, 3, 46);
  auto selection = EstimateBooleanRank(p.tensor, 6, SmallConfig(1));
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  EXPECT_GE(selection->best_rank, 1);
  EXPECT_GE(selection->ranks.size(), 2u);
}

}  // namespace
}  // namespace dbtf
