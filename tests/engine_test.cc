#include "dbtf/engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "dbtf/dbtf.h"
#include "dbtf/session.h"
#include "generator/generator.h"
#include "modelselect/rank_selection.h"

namespace dbtf {
namespace {

DbtfConfig SmallConfig(std::int64_t rank = 4) {
  DbtfConfig config;
  config.rank = rank;
  config.max_iterations = 8;
  config.num_initial_sets = 2;
  config.num_partitions = 4;
  config.seed = 17;
  config.cluster.num_machines = 2;
  config.cluster.num_threads = 2;
  return config;
}

PlantedTensor MakePlanted(std::int64_t dim, std::int64_t rank,
                          std::uint64_t seed) {
  PlantedSpec spec;
  spec.dim_i = dim;
  spec.dim_j = dim + 4;
  spec.dim_k = dim - 4;
  spec.rank = rank;
  spec.factor_density = 0.18;
  spec.seed = seed;
  return GeneratePlanted(spec).value();
}

void ExpectSameComm(const CommSnapshot& got, const CommSnapshot& want) {
  EXPECT_EQ(got.shuffle_bytes, want.shuffle_bytes);
  EXPECT_EQ(got.broadcast_bytes, want.broadcast_bytes);
  EXPECT_EQ(got.collect_bytes, want.collect_bytes);
  EXPECT_EQ(got.shuffle_events, want.shuffle_events);
  EXPECT_EQ(got.broadcast_events, want.broadcast_events);
  EXPECT_EQ(got.collect_events, want.collect_events);
}

/// The tentpole acceptance criterion: on a fixed seed, a session run and the
/// Dbtf::Factorize wrapper produce bitwise-identical factors and an
/// identical communication snapshot.
TEST(Session, MatchesWrapperBitwiseAndOnTheLedger) {
  const PlantedTensor p = MakePlanted(24, 4, 41);
  const DbtfConfig config = SmallConfig();

  auto wrapper = Dbtf::Factorize(p.tensor, config);
  ASSERT_TRUE(wrapper.ok()) << wrapper.status().ToString();

  auto session = Session::Create(p.tensor, config);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto direct = (*session)->Factorize(config);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  EXPECT_EQ(direct->a, wrapper->a);
  EXPECT_EQ(direct->b, wrapper->b);
  EXPECT_EQ(direct->c, wrapper->c);
  EXPECT_EQ(direct->iteration_errors, wrapper->iteration_errors);
  EXPECT_EQ(direct->final_error, wrapper->final_error);
  EXPECT_EQ(direct->cells_changed, wrapper->cells_changed);
  EXPECT_EQ(direct->cache_entries, wrapper->cache_entries);
  EXPECT_EQ(direct->cache_bytes, wrapper->cache_bytes);
  ExpectSameComm(direct->comm, wrapper->comm);
}

/// The ledger is charged by construction at the routing layer; its totals
/// must match the paper's closed forms (Lemmas 6-7) computed from the run's
/// own counts.
TEST(Session, LedgerMatchesAnalyticFormulas) {
  const PlantedTensor p = MakePlanted(24, 4, 42);
  const DbtfConfig config = SmallConfig();
  auto session = Session::Create(p.tensor, config);
  ASSERT_TRUE(session.ok());
  auto r = (*session)->Factorize(config);
  ASSERT_TRUE(r.ok());

  // Shuffle: every non-zero of the three unfoldings crosses the wire once
  // as a 3-coordinate record.
  EXPECT_EQ(r->comm.shuffle_events, 1);
  EXPECT_EQ(r->comm.shuffle_bytes,
            3 * p.tensor.NumNonZeros() *
                static_cast<std::int64_t>(3 * sizeof(std::uint32_t)));

  // One factor update = 1 broadcast event + R collect events. Iteration 1
  // runs L sets x 3 modes; iterations 2..T run 3 modes each.
  const std::int64_t updates =
      3 * (config.num_initial_sets + (r->iterations_run - 1));
  EXPECT_EQ(r->comm.broadcast_events, updates);
  EXPECT_EQ(r->comm.collect_events, updates * config.rank);

  // Collect volume: 2 errors x rows x partitions per column (Lemma 7).
  const std::int64_t rows[3] = {p.tensor.dim_i(), p.tensor.dim_j(),
                                p.tensor.dim_k()};
  std::int64_t per_iteration = 0;
  for (int mode = 0; mode < 3; ++mode) {
    per_iteration += (*session)->partitions_used(static_cast<Mode>(mode + 1)) *
                     rows[mode] * config.rank * 2 *
                     static_cast<std::int64_t>(sizeof(std::int64_t));
  }
  EXPECT_EQ(r->comm.collect_bytes, (updates / 3) * per_iteration);
}

/// A session partitions and shuffles once; later runs reuse the resident
/// partitions. Each run still *reports* the shuffle (so results stay
/// comparable), while the raw cluster ledger records it exactly once.
TEST(Session, ReuseAcrossRanksShufflesOnce) {
  const PlantedTensor p = MakePlanted(24, 4, 43);
  DbtfConfig config = SmallConfig();
  auto session = Session::Create(p.tensor, config);
  ASSERT_TRUE(session.ok());

  for (const std::int64_t rank : {3, 5}) {
    config.rank = rank;
    auto from_session = (*session)->Factorize(config);
    auto from_wrapper = Dbtf::Factorize(p.tensor, config);
    ASSERT_TRUE(from_session.ok() && from_wrapper.ok());
    // Reuse is invisible to the result: factors and reported traffic are
    // identical to a from-scratch factorization.
    EXPECT_EQ(from_session->a, from_wrapper->a);
    EXPECT_EQ(from_session->b, from_wrapper->b);
    EXPECT_EQ(from_session->c, from_wrapper->c);
    ExpectSameComm(from_session->comm, from_wrapper->comm);
  }
  EXPECT_EQ((*session)->cluster().comm().Snapshot().shuffle_events, 1)
      << "the resident partitions must not be reshuffled between runs";
}

TEST(Session, OwnsAllPartitionStateInWorkers) {
  const PlantedTensor p = MakePlanted(24, 4, 44);
  const DbtfConfig config = SmallConfig();
  auto session = Session::Create(p.tensor, config);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->num_workers(), config.cluster.num_machines);
  EXPECT_EQ((*session)->cluster().num_attached_workers(),
            config.cluster.num_machines);
}

TEST(Session, RejectsMismatchedPartitioning) {
  const PlantedTensor p = MakePlanted(20, 3, 45);
  DbtfConfig config = SmallConfig(3);
  auto session = Session::Create(p.tensor, config);
  ASSERT_TRUE(session.ok());
  DbtfConfig other = config;
  other.num_partitions = 8;
  EXPECT_EQ((*session)->Factorize(other).status().code(),
            StatusCode::kInvalidArgument);
  other = config;
  other.cluster.num_machines = 3;
  EXPECT_EQ((*session)->Factorize(other).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RunFactorUpdate, RequiresAttachedWorkers) {
  const DbtfConfig config = SmallConfig(2);
  auto cluster = Cluster::Create(config.cluster);
  ASSERT_TRUE(cluster.ok());
  BitMatrix factor(8, 2);
  BitMatrix mf(8, 2);
  BitMatrix ms(8, 2);
  const UnfoldShape shape{8, 8, 8};
  auto r = RunFactorUpdate(cluster->get(), Mode::kOne, shape, &factor, mf, ms,
                           config);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

/// The rank scan runs every candidate on one resident session.
TEST(RankSelection, SharesOnePartitionedSession) {
  const PlantedTensor p = MakePlanted(24, 3, 46);
  auto selection = EstimateBooleanRank(p.tensor, 6, SmallConfig(1));
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  EXPECT_GE(selection->best_rank, 1);
  EXPECT_GE(selection->ranks.size(), 2u);
}

}  // namespace
}  // namespace dbtf
