#include "tensor/unfold.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <utility>

#include "common/random.h"
#include "test_util.h"

namespace dbtf {
namespace {

TEST(UnfoldShape, MatchesPaperEquationOne) {
  // mode 1: rows=I, blocks=K, within=J
  const UnfoldShape s1 = ShapeForMode(3, 5, 7, Mode::kOne);
  EXPECT_EQ(s1.rows, 3);
  EXPECT_EQ(s1.blocks, 7);
  EXPECT_EQ(s1.within, 5);
  EXPECT_EQ(s1.cols(), 35);
  // mode 2: rows=J, blocks=K, within=I
  const UnfoldShape s2 = ShapeForMode(3, 5, 7, Mode::kTwo);
  EXPECT_EQ(s2.rows, 5);
  EXPECT_EQ(s2.blocks, 7);
  EXPECT_EQ(s2.within, 3);
  // mode 3: rows=K, blocks=J, within=I
  const UnfoldShape s3 = ShapeForMode(3, 5, 7, Mode::kThree);
  EXPECT_EQ(s3.rows, 7);
  EXPECT_EQ(s3.blocks, 5);
  EXPECT_EQ(s3.within, 3);
}

TEST(MapCell, MatchesPaperColumnFormulas) {
  const Coord c{2, 3, 4};  // (i, j, k), 0-based
  const UnfoldShape s1 = ShapeForMode(8, 8, 8, Mode::kOne);
  const UnfoldedCell m1 = MapCell(c, Mode::kOne);
  EXPECT_EQ(m1.row, 2);
  EXPECT_EQ(m1.col(s1), 3 + 4 * 8);  // col = j + k*J
  const UnfoldShape s2 = ShapeForMode(8, 8, 8, Mode::kTwo);
  const UnfoldedCell m2 = MapCell(c, Mode::kTwo);
  EXPECT_EQ(m2.row, 3);
  EXPECT_EQ(m2.col(s2), 2 + 4 * 8);  // col = i + k*I
  const UnfoldShape s3 = ShapeForMode(8, 8, 8, Mode::kThree);
  const UnfoldedCell m3 = MapCell(c, Mode::kThree);
  EXPECT_EQ(m3.row, 4);
  EXPECT_EQ(m3.col(s3), 2 + 3 * 8);  // col = i + j*I
}

/// Property: MapCell / UnmapCell are inverse bijections for every mode.
class MapCellProperty : public ::testing::TestWithParam<Mode> {};

TEST_P(MapCellProperty, RoundTripsRandomCells) {
  const Mode mode = GetParam();
  Rng rng(static_cast<std::uint64_t>(mode));
  for (int trial = 0; trial < 200; ++trial) {
    const Coord c{static_cast<std::uint32_t>(rng.NextBounded(100)),
                  static_cast<std::uint32_t>(rng.NextBounded(90)),
                  static_cast<std::uint32_t>(rng.NextBounded(80))};
    const UnfoldedCell cell = MapCell(c, mode);
    const Coord back = UnmapCell(cell, mode);
    EXPECT_EQ(back, c);
  }
}

TEST_P(MapCellProperty, ColumnsAreDistinctPerRow) {
  // Two distinct cells mapping to the same row must map to distinct columns.
  const Mode mode = GetParam();
  const UnfoldShape shape = ShapeForMode(4, 5, 6, mode);
  auto tensor = SparseTensor::Create(4, 5, 6);
  ASSERT_TRUE(tensor.ok());
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      for (std::int64_t k = 0; k < 6; ++k) {
        const UnfoldedCell cell =
            MapCell(Coord{static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(j),
                          static_cast<std::uint32_t>(k)},
                    mode);
        EXPECT_LT(cell.row, shape.rows);
        EXPECT_LT(cell.col(shape), shape.cols());
        EXPECT_TRUE(seen.insert({cell.row, cell.col(shape)}).second)
            << "unfolding must be injective";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, MapCellProperty,
                         ::testing::Values(Mode::kOne, Mode::kTwo,
                                           Mode::kThree));

/// Property: DenseUnfold then FoldBack recovers the tensor, for all modes
/// and several shapes.
class UnfoldRoundTrip
    : public ::testing::TestWithParam<std::tuple<Mode, int, int, int>> {};

TEST_P(UnfoldRoundTrip, FoldBackRecoversTensor) {
  const auto [mode, di, dj, dk] = GetParam();
  const SparseTensor t = testing::RandomTensor(di, dj, dk, 0.1, 99);
  auto unfolded = DenseUnfold(t, mode);
  ASSERT_TRUE(unfolded.ok());
  EXPECT_EQ(unfolded->NumNonZeros(), t.NumNonZeros());
  auto back = FoldBack(*unfolded, mode, di, dj, dk);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndShapes, UnfoldRoundTrip,
    ::testing::Combine(::testing::Values(Mode::kOne, Mode::kTwo, Mode::kThree),
                       ::testing::Values(5, 17), ::testing::Values(6, 31),
                       ::testing::Values(7)));

TEST(DenseUnfold, HonorsMemoryBudget) {
  const SparseTensor t = testing::RandomTensor(16, 16, 16, 0.1, 1);
  auto result = DenseUnfold(t, Mode::kOne, /*max_bytes=*/16);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(FoldBack, RejectsShapeMismatch) {
  const SparseTensor t = testing::RandomTensor(4, 5, 6, 0.2, 2);
  auto unfolded = DenseUnfold(t, Mode::kOne);
  ASSERT_TRUE(unfolded.ok());
  EXPECT_FALSE(FoldBack(*unfolded, Mode::kOne, 5, 5, 6).ok());
  EXPECT_FALSE(FoldBack(*unfolded, Mode::kTwo, 4, 5, 6).ok());
}

}  // namespace
}  // namespace dbtf
