#include "dist/transport/transport.h"

#include <gtest/gtest.h>

#include <signal.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "dbtf/config.h"
#include "dbtf/dbtf.h"
#include "dbtf/partition.h"
#include "dbtf/session.h"
#include "dist/cluster.h"
#include "dist/provision.h"
#include "generator/generator.h"
#include "tensor/unfold.h"

namespace dbtf {
namespace {

// --- Options and parsing ----------------------------------------------------

TEST(TransportKind, ParseAcceptsTheTwoNames) {
  auto inproc = ParseTransportKind("inproc");
  ASSERT_TRUE(inproc.ok());
  EXPECT_EQ(*inproc, TransportKind::kInProcess);
  auto socket = ParseTransportKind("socket");
  ASSERT_TRUE(socket.ok());
  EXPECT_EQ(*socket, TransportKind::kSocket);
}

TEST(TransportKind, ParseRejectsUnknownNames) {
  EXPECT_EQ(ParseTransportKind("tcp").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTransportKind("").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTransportKind("Socket").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TransportKind, NamesRoundTrip) {
  EXPECT_EQ(*ParseTransportKind(TransportKindName(TransportKind::kInProcess)),
            TransportKind::kInProcess);
  EXPECT_EQ(*ParseTransportKind(TransportKindName(TransportKind::kSocket)),
            TransportKind::kSocket);
}

TEST(TransportOptions, ValidateAcceptsDefaults) {
  TransportOptions options;
  EXPECT_TRUE(options.Validate(4).ok());
  options.kind = TransportKind::kSocket;
  EXPECT_TRUE(options.Validate(4).ok());
}

TEST(TransportOptions, ValidateRejectsWorkerCountMismatch) {
  TransportOptions options;
  options.kind = TransportKind::kSocket;
  options.socket_workers = 3;
  EXPECT_EQ(options.Validate(4).code(), StatusCode::kInvalidArgument);
  options.socket_workers = 4;
  EXPECT_TRUE(options.Validate(4).ok());
  options.socket_workers = -1;
  EXPECT_EQ(options.Validate(4).code(), StatusCode::kInvalidArgument);
}

TEST(TransportOptions, ValidateRejectsOverlongSocketDir) {
  TransportOptions options;
  options.kind = TransportKind::kSocket;
  options.socket_dir = std::string(200, 'd');  // sun_path is ~108 bytes
  EXPECT_EQ(options.Validate(2).code(), StatusCode::kInvalidArgument);
}

/// The transport options validate through ClusterConfig::Validate, so a bad
/// deployment is rejected at cluster creation, not at first delivery.
TEST(TransportOptions, ClusterConfigValidatesTransport) {
  ClusterConfig config;
  config.num_machines = 2;
  config.num_threads = 1;
  config.transport.kind = TransportKind::kSocket;
  config.transport.socket_workers = 5;
  EXPECT_FALSE(config.Validate().ok());
  EXPECT_FALSE(Cluster::Create(config).ok());
  config.transport.socket_workers = 2;
  EXPECT_TRUE(config.Validate().ok());
}

// --- Socket endpoints, end to end -------------------------------------------

ClusterConfig SocketClusterConfig(int machines) {
  ClusterConfig config;
  config.num_machines = machines;
  config.num_threads = 2;
  config.transport.kind = TransportKind::kSocket;
  return config;
}

PlantedTensor SmallPlanted(std::uint64_t seed) {
  PlantedSpec spec;
  spec.dim_i = 20;
  spec.dim_j = 24;
  spec.dim_k = 16;
  spec.rank = 3;
  spec.factor_density = 0.2;
  spec.seed = seed;
  return GeneratePlanted(spec).value();
}

TEST(SocketTransport, SpawnsOneProcessPerMachineAndStoresPartitions) {
  auto cluster = Cluster::Create(SocketClusterConfig(2));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ASSERT_TRUE(ProvisionWorkers(**cluster).ok());
  EXPECT_EQ((*cluster)->num_attached_workers(), 2);

  // Each endpoint fronts a live OS process (and no in-process worker).
  for (int m = 0; m < 2; ++m) {
    std::shared_ptr<WorkerEndpoint> endpoint = (*cluster)->EndpointOn(m);
    ASSERT_NE(endpoint, nullptr);
    EXPECT_EQ(endpoint->local_worker(), nullptr);
    auto pid = endpoint->ProcessId();
    ASSERT_TRUE(pid.ok());
    EXPECT_GT(*pid, 0);
    EXPECT_EQ(kill(*pid, 0), 0) << "worker process not alive";
  }

  // Ship real partitions across the wire and read back residency.
  const PlantedTensor p = SmallPlanted(7);
  auto unfolding = PartitionedUnfolding::Build(p.tensor, Mode::kOne, 4);
  ASSERT_TRUE(unfolding.ok());
  const UnfoldShape shape = unfolding->shape();
  std::vector<Partition> parts = std::move(*unfolding).ReleasePartitions();
  const std::int64_t n = static_cast<std::int64_t>(parts.size());
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(StorePartition(**cluster, Mode::kOne, i,
                               std::move(parts[static_cast<std::size_t>(i)]),
                               shape)
                    .ok());
  }
  std::int64_t seen = 0;
  for (int m = 0; m < 2; ++m) {
    auto local = (*cluster)->EndpointOn(m)->ListPartitions(Mode::kOne, nullptr);
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    for (const std::int64_t index : *local) {
      EXPECT_EQ((*cluster)->OwnerOf(index), m);
      ++seen;
    }
  }
  EXPECT_EQ(seen, n);
  (*cluster)->DetachWorkers();
}

/// A handler-side rejection must come back across the socket as the same
/// Status the in-process worker would return — errors are data, not
/// connection failures.
TEST(SocketTransport, HandlerErrorsCrossTheWireAsStatuses) {
  auto cluster = Cluster::Create(SocketClusterConfig(1));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE(ProvisionWorkers(**cluster).ok());
  std::shared_ptr<WorkerEndpoint> endpoint = (*cluster)->EndpointOn(0);
  ASSERT_NE(endpoint, nullptr);

  // A column delta against a base generation the (empty) worker does not
  // hold is rejected with kFailedPrecondition by Worker::ApplyMatrixDelta.
  FactorDelta msg;
  msg.mode = Mode::kOne;
  msg.rows = 8;
  MatrixDelta d;
  d.slot = 0;
  d.full = false;
  d.generation = 7;
  d.base_generation = 5;
  d.rows = 8;
  d.cols = 4;
  msg.updates.push_back(std::move(d));
  const Status status = endpoint->Deliver(msg, nullptr);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition)
      << status.ToString();

  // The endpoint survives the rejection: the connection is still good.
  auto local = endpoint->ListPartitions(Mode::kOne, nullptr);
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(local->empty());
  (*cluster)->DetachWorkers();
}

TEST(SocketTransport, LendPartitionIsRejected) {
  auto cluster = Cluster::Create(SocketClusterConfig(1));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE(ProvisionWorkers(**cluster).ok());
  const PlantedTensor p = SmallPlanted(9);
  auto unfolding = PartitionedUnfolding::Build(p.tensor, Mode::kOne, 2);
  ASSERT_TRUE(unfolding.ok());
  const Partition& part = unfolding->partitions()[0];
  EXPECT_EQ(
      LendPartition(**cluster, Mode::kOne, 0, &part, unfolding->shape()).code(),
      StatusCode::kFailedPrecondition);
  (*cluster)->DetachWorkers();
}

/// SIGKILL-ing a worker process surfaces as kIoError at the endpoint and as
/// a permanent machine loss at the routing layer — the same path an injected
/// crash takes, so recovery needs no transport-specific code.
TEST(SocketTransport, KilledWorkerBecomesALostMachine) {
  auto cluster = Cluster::Create(SocketClusterConfig(1));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE(ProvisionWorkers(**cluster).ok());

  std::shared_ptr<WorkerEndpoint> endpoint = (*cluster)->EndpointOn(0);
  ASSERT_NE(endpoint, nullptr);
  auto pid = endpoint->ProcessId();
  ASSERT_TRUE(pid.ok());
  ASSERT_EQ(kill(*pid, SIGKILL), 0);

  // Routed delivery: the transport failure is mapped onto machine loss and
  // surfaces as kUnavailable, exactly like an injected crash.
  FactorDelta msg;
  msg.mode = Mode::kOne;
  msg.rows = 4;
  const Status status = (*cluster)->BroadcastFactors(std::move(msg));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
  EXPECT_EQ((*cluster)->DeadMachines(), std::vector<int>{0});
  EXPECT_EQ((*cluster)->EndpointOn(0), nullptr);
  EXPECT_EQ((*cluster)->recovery().Snapshot().machines_lost, 1);
  (*cluster)->DetachWorkers();
}

// --- Crash recovery over the real transport ---------------------------------

DbtfConfig SmallRunConfig(TransportKind kind) {
  DbtfConfig config;
  config.rank = 4;
  config.max_iterations = 6;
  config.num_initial_sets = 2;
  config.num_partitions = 4;
  config.seed = 23;
  config.cluster.num_machines = 2;
  config.cluster.num_threads = 2;
  config.cluster.transport.kind = kind;
  return config;
}

void ExpectGoldenFactors(const DbtfResult& got, const DbtfResult& want) {
  EXPECT_EQ(got.a, want.a);
  EXPECT_EQ(got.b, want.b);
  EXPECT_EQ(got.c, want.c);
  EXPECT_EQ(got.iteration_errors, want.iteration_errors);
  EXPECT_EQ(got.final_error, want.final_error);
}

/// Satellite drill: SIGKILL one worker process, then run. The loss is
/// detected at the first delivery, ReprovisionLostPartitions rebuilds the
/// dead machine's partitions onto the survivor mid-run, and the run still
/// produces the same factors as the in-process oracle.
TEST(SocketTransport, KillThenReprovisionYieldsGoldenFactors) {
  const PlantedTensor p = SmallPlanted(31);
  const DbtfConfig config = SmallRunConfig(TransportKind::kSocket);

  auto golden = Dbtf::Factorize(p.tensor, SmallRunConfig(TransportKind::kInProcess));
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();

  auto session = Session::Create(p.tensor, config);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto pid = (*session)->cluster().EndpointOn(1)->ProcessId();
  ASSERT_TRUE(pid.ok());
  ASSERT_EQ(kill(*pid, SIGKILL), 0);

  auto recovered = (*session)->Factorize(config);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectGoldenFactors(*recovered, *golden);
  EXPECT_EQ(recovered->recovery.machines_lost, 1);
  EXPECT_GT(recovered->recovery.reprovisions, 0);
}

/// Satellite drill, checkpoint flavor: interrupt a checkpointed socket run,
/// SIGKILL one worker process while the run is down, then resume. Restore
/// detects the dead process, re-provisions coverage onto the survivor, and
/// the resumed run completes with golden factors.
TEST(SocketTransport, KillThenCheckpointResumeYieldsGoldenFactors) {
  const PlantedTensor p = SmallPlanted(37);
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("dbtf_transport_ckpt_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);

  auto golden = Dbtf::Factorize(p.tensor, SmallRunConfig(TransportKind::kInProcess));
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();

  DbtfConfig interrupted = SmallRunConfig(TransportKind::kSocket);
  interrupted.checkpoint_dir = dir;
  interrupted.checkpoint_every_columns = 1;
  interrupted.halt_after_columns = 9;

  auto session = Session::Create(p.tensor, interrupted);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto halted = (*session)->Factorize(interrupted);
  ASSERT_EQ(halted.status().code(), StatusCode::kResourceExhausted);

  auto pid = (*session)->cluster().EndpointOn(0)->ProcessId();
  ASSERT_TRUE(pid.ok());
  ASSERT_EQ(kill(*pid, SIGKILL), 0);

  DbtfConfig resume = SmallRunConfig(TransportKind::kSocket);
  resume.checkpoint_dir = dir;
  resume.resume = true;
  auto resumed = (*session)->Factorize(resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectGoldenFactors(*resumed, *golden);
  EXPECT_GE(resumed->resumed_from_iteration, 1);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dbtf
