#include "bcpals/bcp_als.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "generator/generator.h"
#include "tensor/boolean_ops.h"

namespace dbtf {
namespace {

PlantedTensor Planted(std::uint64_t seed, std::int64_t dim = 20,
                      std::int64_t rank = 3) {
  PlantedSpec spec;
  spec.dim_i = dim;
  spec.dim_j = dim;
  spec.dim_k = dim;
  spec.rank = rank;
  spec.factor_density = 0.2;
  spec.seed = seed;
  return GeneratePlanted(spec).value();
}

TEST(BcpAlsConfig, Validation) {
  BcpAlsConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.rank = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = BcpAlsConfig{};
  config.rank = 65;
  EXPECT_FALSE(config.Validate().ok());
  config = BcpAlsConfig{};
  config.max_iterations = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = BcpAlsConfig{};
  config.asso.threshold = 2.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(BcpAls, RejectsDegenerateTensor) {
  auto t = SparseTensor::Create(0, 2, 2);
  ASSERT_TRUE(t.ok());
  BcpAlsConfig config;
  EXPECT_FALSE(BcpAls(*t, config).ok());
}

TEST(BcpAls, FinalErrorMatchesEvaluator) {
  const PlantedTensor p = Planted(1);
  BcpAlsConfig config;
  config.rank = 3;
  config.max_iterations = 5;
  auto r = BcpAls(p.tensor, config);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto err = ReconstructionError(p.tensor, r->a, r->b, r->c);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(*err, r->final_error);
}

TEST(BcpAls, ErrorTraceMonotoneNonIncreasing) {
  const PlantedTensor p = Planted(2, 24, 4);
  BcpAlsConfig config;
  config.rank = 4;
  config.max_iterations = 8;
  auto r = BcpAls(p.tensor, config);
  ASSERT_TRUE(r.ok());
  for (std::size_t t = 1; t < r->iteration_errors.size(); ++t) {
    EXPECT_LE(r->iteration_errors[t], r->iteration_errors[t - 1]);
  }
}

TEST(BcpAls, AssoInitRecoversCleanPlantedTensorWell) {
  const PlantedTensor p = Planted(3, 24, 3);
  BcpAlsConfig config;
  config.rank = 3;
  config.max_iterations = 10;
  auto r = BcpAls(p.tensor, config);
  ASSERT_TRUE(r.ok());
  auto rel = RelativeError(p.tensor, r->a, r->b, r->c);
  ASSERT_TRUE(rel.ok());
  EXPECT_LT(*rel, 0.5);
}

TEST(BcpAls, MemoryGateReproducesOom) {
  const PlantedTensor p = Planted(4);
  BcpAlsConfig config;
  config.rank = 3;
  config.max_memory_bytes = 128;  // A single machine with tiny memory.
  auto r = BcpAls(p.tensor, config);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(BcpAls, ConvergesAndStopsEarly) {
  const PlantedTensor p = Planted(5);
  BcpAlsConfig config;
  config.rank = 3;
  config.max_iterations = 30;
  auto r = BcpAls(p.tensor, config);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_LT(r->iterations_run, 30);
}

TEST(BcpAls, ReportsWallTime) {
  const PlantedTensor p = Planted(6);
  BcpAlsConfig config;
  config.rank = 2;
  config.max_iterations = 2;
  auto r = BcpAls(p.tensor, config);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->wall_seconds, 0.0);
}


TEST(BcpAls, TimeBudgetReturnsDeadlineExceeded) {
  const PlantedTensor p = Planted(7, 24, 4);
  BcpAlsConfig config;
  config.rank = 4;
  config.max_iterations = 50;
  config.time_budget_seconds = 1e-6;
  auto r = BcpAls(p.tensor, config);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(BcpAls, NegativeTimeBudgetRejected) {
  BcpAlsConfig config;
  config.time_budget_seconds = -0.5;
  EXPECT_FALSE(config.Validate().ok());
}

}  // namespace
}  // namespace dbtf
