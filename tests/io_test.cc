#include "tensor/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "test_util.h"

namespace dbtf {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TensorIo, RoundTrip) {
  const SparseTensor t = dbtf::testing::RandomTensor(10, 12, 14, 0.1, 5);
  const std::string path = TempPath("tensor_roundtrip.txt");
  ASSERT_TRUE(WriteTensorText(t, path).ok());
  auto back = ReadTensorText(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, t);
  EXPECT_EQ(back->dim_i(), 10);
  EXPECT_EQ(back->dim_j(), 12);
  EXPECT_EQ(back->dim_k(), 14);
  std::remove(path.c_str());
}

TEST(TensorIo, EmptyTensorRoundTrip) {
  auto t = SparseTensor::Create(3, 3, 3);
  ASSERT_TRUE(t.ok());
  const std::string path = TempPath("tensor_empty.txt");
  ASSERT_TRUE(WriteTensorText(*t, path).ok());
  auto back = ReadTensorText(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumNonZeros(), 0);
  EXPECT_EQ(back->dim_i(), 3);
  std::remove(path.c_str());
}

TEST(TensorIo, HeaderlessInfersDimensions) {
  const std::string path = TempPath("tensor_headerless.txt");
  {
    std::ofstream out(path);
    out << "# comment line\n";
    out << "0 1 2\n";
    out << "4 0 0\n";
  }
  auto t = ReadTensorText(path);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->dim_i(), 5);
  EXPECT_EQ(t->dim_j(), 2);
  EXPECT_EQ(t->dim_k(), 3);
  EXPECT_EQ(t->NumNonZeros(), 2);
  EXPECT_TRUE(t->Contains(0, 1, 2));
  std::remove(path.c_str());
}

TEST(TensorIo, MissingFileFails) {
  auto t = ReadTensorText(TempPath("does_not_exist.txt"));
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kIoError);
}

TEST(TensorIo, MalformedLineFails) {
  const std::string path = TempPath("tensor_malformed.txt");
  {
    std::ofstream out(path);
    out << "1 2\n";
  }
  EXPECT_FALSE(ReadTensorText(path).ok());
  std::remove(path.c_str());
}

TEST(TensorIo, NegativeCoordinateFails) {
  const std::string path = TempPath("tensor_negative.txt");
  {
    std::ofstream out(path);
    out << "0 0 0\n";
    out << "-1 0 0\n";
  }
  EXPECT_FALSE(ReadTensorText(path).ok());
  std::remove(path.c_str());
}

TEST(MatrixIo, RoundTrip) {
  auto m = BitMatrix::FromStrings({"0101", "1110", "0000"});
  ASSERT_TRUE(m.ok());
  const std::string path = TempPath("matrix_roundtrip.txt");
  ASSERT_TRUE(WriteMatrixText(*m, path).ok());
  auto back = ReadMatrixText(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, *m);
  std::remove(path.c_str());
}

TEST(MatrixIo, WideMatrixRoundTrip) {
  Rng rng(7);
  const BitMatrix m = BitMatrix::Random(5, 130, 0.3, &rng);
  const std::string path = TempPath("matrix_wide.txt");
  ASSERT_TRUE(WriteMatrixText(m, path).ok());
  auto back = ReadMatrixText(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, m);
  std::remove(path.c_str());
}

TEST(MatrixIo, TruncatedRowFails) {
  const std::string path = TempPath("matrix_truncated.txt");
  {
    std::ofstream out(path);
    out << "2 4\n";
    out << "0101\n";
    out << "01\n";
  }
  EXPECT_FALSE(ReadMatrixText(path).ok());
  std::remove(path.c_str());
}

TEST(MatrixIo, BadCharacterFails) {
  const std::string path = TempPath("matrix_badchar.txt");
  {
    std::ofstream out(path);
    out << "1 3\n";
    out << "0x1\n";
  }
  EXPECT_FALSE(ReadMatrixText(path).ok());
  std::remove(path.c_str());
}

TEST(MatrixIo, MissingFileFails) {
  EXPECT_FALSE(ReadMatrixText(TempPath("nope_matrix.txt")).ok());
}

}  // namespace
}  // namespace dbtf
