#include "common/check.h"

#include <cstdint>

#include <gtest/gtest.h>

namespace dbtf {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  DBTF_CHECK(true);
  DBTF_CHECK(1 + 1 == 2, "never printed: %d", 5);
  DBTF_CHECK_EQ(4, 4);
  DBTF_CHECK_LT(3, 4);
  DBTF_CHECK_LE(4, 4);
  DBTF_DCHECK(true);
  DBTF_DCHECK_EQ(1, 1);
  DBTF_DCHECK_LT(1, 2);
  DBTF_DCHECK_LE(2, 2);
}

TEST(CheckTest, ArgumentsEvaluatedExactlyOnce) {
  int evaluations = 0;
  const auto bump = [&evaluations] { return ++evaluations; };
  DBTF_CHECK_LE(bump(), 5);
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckDeathTest, CheckPrintsExpression) {
  EXPECT_DEATH(DBTF_CHECK(2 > 3), "CHECK failed: 2 > 3");
}

TEST(CheckDeathTest, CheckPrintsFormattedMessage) {
  const int v = 65;
  EXPECT_DEATH(DBTF_CHECK(v < 64, "group width V=%d", v),
               "CHECK failed: v < 64: group width V=65");
}

TEST(CheckDeathTest, CheckEqPrintsBothValues) {
  const std::int64_t lhs = 4;
  const std::int64_t rhs = 5;
  EXPECT_DEATH(DBTF_CHECK_EQ(lhs, rhs),
               "CHECK failed: lhs == rhs \\(4 vs. 5\\)");
}

TEST(CheckDeathTest, CheckLtPrintsBothValues) {
  EXPECT_DEATH(DBTF_CHECK_LT(9, 7), "CHECK failed: 9 < 7 \\(9 vs. 7\\)");
}

TEST(CheckDeathTest, CheckLePrintsBothValues) {
  EXPECT_DEATH(DBTF_CHECK_LE(8, 7), "CHECK failed: 8 <= 7 \\(8 vs. 7\\)");
}

TEST(CheckDeathTest, DcheckMatchesBuildType) {
#ifdef NDEBUG
  // Release: DCHECKs generate no code and evaluate no arguments.
  int evaluations = 0;
  const auto bump = [&evaluations] { return ++evaluations; };
  DBTF_DCHECK(false, "compiled out");
  DBTF_DCHECK_EQ(bump(), 2);
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_DEATH(DBTF_DCHECK(false), "CHECK failed: false");
  EXPECT_DEATH(DBTF_DCHECK_EQ(1, 2), "\\(1 vs. 2\\)");
#endif
}

}  // namespace
}  // namespace dbtf
