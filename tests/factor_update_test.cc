#include "dbtf/factor_update.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/random.h"
#include "test_util.h"

namespace dbtf {
namespace {

struct UpdateFixture {
  SparseTensor tensor;
  BitMatrix factor;
  BitMatrix mf;
  BitMatrix ms;
  std::unique_ptr<Cluster> cluster;
  DbtfConfig config;

  static UpdateFixture Make(std::int64_t di, std::int64_t dj, std::int64_t dk,
                            std::int64_t rank, std::int64_t partitions,
                            std::uint64_t seed, int v = 15) {
    UpdateFixture f;
    f.tensor = testing::RandomTensor(di, dj, dk, 0.12, seed);
    Rng rng(seed + 1);
    // Mode-1 update: factor A (I x R), mf = C (K x R), ms = B (J x R).
    f.factor = BitMatrix::Random(di, rank, 0.3, &rng);
    f.mf = BitMatrix::Random(dk, rank, 0.3, &rng);
    f.ms = BitMatrix::Random(dj, rank, 0.3, &rng);
    f.config.rank = rank;
    f.config.num_partitions = partitions;
    f.config.cache_group_size = v;
    f.config.cluster.num_machines = 2;
    f.config.cluster.num_threads = 2;
    f.cluster = std::move(Cluster::Create(f.config.cluster).value());
    return f;
  }
};

/// The distributed cached update must produce bit-identical factors and
/// errors to the naive dense reference, across ranks (including the
/// multi-group R > V path) and partition counts.
class UpdateEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(UpdateEquivalence, MatchesReferenceUpdate) {
  const auto [rank, partitions, v] = GetParam();
  UpdateFixture f = UpdateFixture::Make(18, 23, 15, rank, partitions,
                                        static_cast<std::uint64_t>(rank), v);
  auto pu = PartitionedUnfolding::Build(f.tensor, Mode::kOne,
                                        f.config.num_partitions);
  ASSERT_TRUE(pu.ok());
  auto dense = DenseUnfold(f.tensor, Mode::kOne);
  ASSERT_TRUE(dense.ok());

  BitMatrix reference_factor = f.factor;
  const std::int64_t reference_error = testing::ReferenceUpdateFactor(
      *dense, &reference_factor, f.mf, f.ms);

  auto stats =
      UpdateFactor(*pu, &f.factor, f.mf, f.ms, f.config, f.cluster.get());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(f.factor, reference_factor) << "bit-identical greedy decisions";
  EXPECT_EQ(stats->final_error, reference_error);
}

INSTANTIATE_TEST_SUITE_P(
    RankPartitionsV, UpdateEquivalence,
    ::testing::Values(std::make_tuple(1, 1, 15), std::make_tuple(3, 4, 15),
                      std::make_tuple(10, 2, 15), std::make_tuple(10, 7, 3),
                      std::make_tuple(17, 4, 5),  // multi-group cache
                      std::make_tuple(20, 3, 8),
                      std::make_tuple(24, 5, 24)));

TEST(UpdateFactor, CachingAblationIsBitIdentical) {
  UpdateFixture cached = UpdateFixture::Make(16, 20, 12, 8, 3, 5);
  UpdateFixture uncached = UpdateFixture::Make(16, 20, 12, 8, 3, 5);
  uncached.config.enable_caching = false;
  auto pu_c = PartitionedUnfolding::Build(cached.tensor, Mode::kOne, 3);
  auto pu_u = PartitionedUnfolding::Build(uncached.tensor, Mode::kOne, 3);
  ASSERT_TRUE(pu_c.ok() && pu_u.ok());
  auto stats_c = UpdateFactor(*pu_c, &cached.factor, cached.mf, cached.ms,
                              cached.config, cached.cluster.get());
  auto stats_u = UpdateFactor(*pu_u, &uncached.factor, uncached.mf,
                              uncached.ms, uncached.config,
                              uncached.cluster.get());
  ASSERT_TRUE(stats_c.ok() && stats_u.ok());
  EXPECT_EQ(cached.factor, uncached.factor);
  EXPECT_EQ(stats_c->final_error, stats_u->final_error);
  EXPECT_GT(stats_c->cache_bytes, 0);
  EXPECT_EQ(stats_u->cache_bytes, 0);
}

TEST(UpdateFactor, GroundTruthFactorsReachZeroError) {
  // Build a tensor exactly from factors, zero the one being updated, and the
  // update must recover a zero-error factor.
  Rng rng(31);
  const BitMatrix a = BitMatrix::Random(14, 5, 0.25, &rng);
  const BitMatrix b = BitMatrix::Random(16, 5, 0.25, &rng);
  const BitMatrix c = BitMatrix::Random(12, 5, 0.25, &rng);
  auto x = ReconstructTensor(a, b, c);
  ASSERT_TRUE(x.ok());
  DbtfConfig config;
  config.rank = 5;
  config.num_partitions = 3;
  config.cluster.num_machines = 2;
  config.cluster.num_threads = 1;
  auto cluster = Cluster::Create(config.cluster);
  ASSERT_TRUE(cluster.ok());
  auto pu = PartitionedUnfolding::Build(*x, Mode::kOne, 3);
  ASSERT_TRUE(pu.ok());
  // Starting AT the ground truth, the update may never leave zero error
  // (the current value is always among the candidates).
  BitMatrix factor = a;
  auto stats = UpdateFactor(*pu, &factor, c, b, config, cluster->get());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->final_error, 0);
  // Starting from all-zero, one greedy sweep must land very close to zero
  // (greedy column order can leave a few residual cells).
  BitMatrix from_zero(14, 5);
  auto stats_zero = UpdateFactor(*pu, &from_zero, c, b, config, cluster->get());
  ASSERT_TRUE(stats_zero.ok());
  EXPECT_LE(stats_zero->final_error, x->NumNonZeros() / 20);
}

TEST(UpdateFactor, ErrorNeverIncreasesAcrossRepeatedCalls) {
  UpdateFixture f = UpdateFixture::Make(20, 24, 18, 6, 4, 9);
  auto pu = PartitionedUnfolding::Build(f.tensor, Mode::kOne, 4);
  ASSERT_TRUE(pu.ok());
  std::int64_t previous = -1;
  for (int round = 0; round < 4; ++round) {
    auto stats =
        UpdateFactor(*pu, &f.factor, f.mf, f.ms, f.config, f.cluster.get());
    ASSERT_TRUE(stats.ok());
    if (previous >= 0) EXPECT_LE(stats->final_error, previous);
    previous = stats->final_error;
  }
}

TEST(UpdateFactor, ChargesCommunication) {
  UpdateFixture f = UpdateFixture::Make(16, 16, 16, 4, 2, 3);
  auto pu = PartitionedUnfolding::Build(f.tensor, Mode::kOne, 2);
  ASSERT_TRUE(pu.ok());
  auto stats =
      UpdateFactor(*pu, &f.factor, f.mf, f.ms, f.config, f.cluster.get());
  ASSERT_TRUE(stats.ok());
  const CommSnapshot snap = f.cluster->comm().Snapshot();
  EXPECT_GT(snap.broadcast_bytes, 0);
  EXPECT_GT(snap.collect_bytes, 0);
  // One collect per column update.
  EXPECT_EQ(snap.collect_events, f.config.rank);
}

TEST(UpdateFactor, ValidatesShapes) {
  UpdateFixture f = UpdateFixture::Make(16, 16, 16, 4, 2, 11);
  auto pu = PartitionedUnfolding::Build(f.tensor, Mode::kOne, 2);
  ASSERT_TRUE(pu.ok());
  BitMatrix wrong_rank(16, 5);
  EXPECT_FALSE(
      UpdateFactor(*pu, &wrong_rank, f.mf, f.ms, f.config, f.cluster.get())
          .ok());
  BitMatrix wrong_rows(15, 4);
  EXPECT_FALSE(
      UpdateFactor(*pu, &wrong_rows, f.mf, f.ms, f.config, f.cluster.get())
          .ok());
  BitMatrix wrong_ms(17, 4);
  EXPECT_FALSE(
      UpdateFactor(*pu, &f.factor, f.mf, wrong_ms, f.config, f.cluster.get())
          .ok());
}

}  // namespace
}  // namespace dbtf
