#include "harness/latency.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/random.h"

namespace dbtf {
namespace bench {
namespace {

TEST(LatencyHistogram, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.PercentileSeconds(50.0), 0.0);
  EXPECT_EQ(h.PercentileSeconds(99.0), 0.0);
  EXPECT_EQ(h.MaxSeconds(), 0.0);
}

TEST(LatencyHistogram, SingleSampleIsEveryPercentile) {
  LatencyHistogram h;
  h.Record(10e-9);  // 10 ns: inside the exact sub-octave range
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(0.0), 10e-9);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(50.0), 10e-9);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(100.0), 10e-9);
}

TEST(LatencyHistogram, SmallNanosAreExact) {
  // Below one octave (32 ns at kSubBits = 5) every nanosecond has its own
  // bucket, so percentiles come back exactly.
  LatencyHistogram h;
  for (int ns = 1; ns <= 31; ++ns) h.Record(static_cast<double>(ns) * 1e-9);
  EXPECT_EQ(h.count(), 31);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(100.0 / 31.0), 1e-9);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(100.0), 31e-9);
  // The median of 1..31 is 16.
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(50.0), 16e-9);
}

TEST(LatencyHistogram, PercentilesTrackExactWithinGridError) {
  // The documented contract: the reported percentile is the upper edge of
  // its log-linear bucket, within 2^-5 relative error of the true sample.
  Rng rng(1234);
  std::vector<double> samples;
  LatencyHistogram h;
  for (int i = 0; i < 20000; ++i) {
    // Latencies spanning ~100 ns to ~100 ms on a log scale.
    const double seconds = 1e-7 * std::pow(10.0, 6.0 * rng.NextDouble());
    samples.push_back(seconds);
    h.Record(seconds);
  }
  std::sort(samples.begin(), samples.end());
  ASSERT_EQ(h.count(), static_cast<std::int64_t>(samples.size()));
  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    const std::size_t index = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(samples.size()))) - 1;
    const double exact = samples[index];
    const double reported = h.PercentileSeconds(p);
    EXPECT_GE(reported, exact * (1.0 - 1.0 / 32.0)) << "p" << p;
    EXPECT_LE(reported, exact * (1.0 + 1.0 / 32.0) + 1e-9) << "p" << p;
  }
}

TEST(LatencyHistogram, MergeMatchesRecordingEverythingInOne) {
  Rng rng(77);
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram all;
  for (int i = 0; i < 5000; ++i) {
    const double seconds = 1e-8 * std::pow(10.0, 5.0 * rng.NextDouble());
    (i % 2 == 0 ? a : b).Record(seconds);
    all.Record(seconds);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  for (const double p : {1.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(a.PercentileSeconds(p), all.PercentileSeconds(p));
  }
}

TEST(LatencyHistogram, DegenerateSamplesClampInsteadOfCorrupting) {
  LatencyHistogram h;
  h.Record(-1.0);
  h.Record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 2);
  EXPECT_DOUBLE_EQ(h.MaxSeconds(), 0.0) << "both clamp to the zero bucket";
  // A sample beyond the 64-bit nanosecond range saturates into the top
  // bucket instead of overflowing.
  h.Record(1e30);
  EXPECT_EQ(h.count(), 3);
  EXPECT_GT(h.MaxSeconds(), 1e9);
  EXPECT_TRUE(std::isfinite(h.MaxSeconds()));
}

TEST(LatencyHistogram, OutOfRangePercentilesClamp) {
  LatencyHistogram h;
  h.Record(5e-9);
  h.Record(20e-9);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(-10.0), 5e-9);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(250.0), 20e-9);
}

}  // namespace
}  // namespace bench
}  // namespace dbtf
