#include "dist/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dbtf/partition.h"
#include "dist/cluster.h"
#include "dist/provision.h"
#include "dist/worker.h"
#include "generator/generator.h"
#include "tensor/unfold.h"

namespace dbtf {
namespace {

FaultPlan MustParse(const std::string& text) {
  auto plan = FaultPlan::Parse(text);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

ClusterConfig FaultyConfig(const std::string& plan, int machines = 2) {
  ClusterConfig config;
  config.num_machines = machines;
  config.num_threads = 2;
  config.fault_plan = MustParse(plan);
  return config;
}

// --- FaultSpec / FaultPlan text form ----------------------------------------

TEST(FaultSpec, ToStringCoversAllForms) {
  FaultSpec spec;
  spec.machine = 1;
  spec.message = MessageKind::kDispatch;
  spec.kind = FaultKind::kTransient;
  spec.delivery = 3;
  EXPECT_EQ(spec.ToString(), "1:dispatch:transient@3");
  spec.count = 2;
  EXPECT_EQ(spec.ToString(), "1:dispatch:transient@3x2");
  spec.kind = FaultKind::kStall;
  spec.stall_seconds = 0.5;
  EXPECT_EQ(spec.ToString(), "1:dispatch:stall@3x2~0.5");
  spec.message = MessageKind::kBroadcast;
  spec.kind = FaultKind::kCrash;
  spec.count = 1;
  spec.stall_seconds = 0.0;
  EXPECT_EQ(spec.ToString(), "1:broadcast:crash@3");
}

TEST(FaultPlan, ParseRoundTripsToString) {
  const std::string text =
      "1:dispatch:transient@3x2,0:collect:stall@1~0.5,1:broadcast:crash@2";
  const FaultPlan plan = MustParse(text);
  ASSERT_EQ(plan.faults.size(), 3u);
  EXPECT_EQ(plan.ToString(), text);
  // Whitespace and trailing commas are tolerated; empty input is empty.
  EXPECT_EQ(MustParse(" 1:dispatch:transient@3x2 , ").ToString(),
            "1:dispatch:transient@3x2");
  EXPECT_TRUE(MustParse("").empty());
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::Parse("nonsense").ok());
  EXPECT_FALSE(FaultPlan::Parse("x:dispatch:transient@1").ok());
  EXPECT_FALSE(FaultPlan::Parse("0:teleport:transient@1").ok());
  EXPECT_FALSE(FaultPlan::Parse("0:dispatch:flaky@1").ok());
  EXPECT_FALSE(FaultPlan::Parse("0:dispatch:transient@").ok());
  EXPECT_FALSE(FaultPlan::Parse("0:dispatch:transient@1xq").ok());
  EXPECT_FALSE(FaultPlan::Parse("0:collect:stall@1~fast").ok());
}

TEST(FaultPlan, ValidateChecksRangesAndSurvivors) {
  EXPECT_TRUE(MustParse("1:dispatch:transient@1").Validate(2).ok());
  // Machine out of range for the cluster size.
  EXPECT_FALSE(MustParse("2:dispatch:transient@1").Validate(2).ok());
  // Delivery ordinals are 1-based.
  EXPECT_FALSE(MustParse("0:dispatch:transient@0").Validate(2).ok());
  // Stall seconds only apply to stalls.
  FaultPlan plan = MustParse("0:dispatch:transient@1");
  plan.faults[0].stall_seconds = 0.5;
  EXPECT_FALSE(plan.Validate(2).ok());
  // A plan may not crash every machine: nobody would survive to adopt the
  // lost partitions.
  EXPECT_FALSE(
      MustParse("0:dispatch:crash@1,1:collect:crash@1").Validate(2).ok());
  EXPECT_TRUE(
      MustParse("0:dispatch:crash@1,1:collect:crash@1").Validate(3).ok());
}

TEST(FaultPlan, RandomIsDeterministicAndSparesMachineZero) {
  const FaultPlan a = FaultPlan::Random(99, 4, 6, 2);
  const FaultPlan b = FaultPlan::Random(99, 4, 6, 2);
  EXPECT_EQ(a.ToString(), b.ToString()) << "same seed, same plan";
  EXPECT_NE(a.ToString(), FaultPlan::Random(100, 4, 6, 2).ToString());
  EXPECT_TRUE(a.Validate(4).ok());

  std::vector<bool> crashed(4, false);
  int crashes = 0;
  for (const FaultSpec& spec : a.faults) {
    if (spec.kind != FaultKind::kCrash) continue;
    EXPECT_NE(spec.machine, 0) << "crashes always spare machine 0";
    EXPECT_FALSE(crashed[static_cast<std::size_t>(spec.machine)])
        << "crashes land on distinct machines";
    crashed[static_cast<std::size_t>(spec.machine)] = true;
    ++crashes;
  }
  EXPECT_EQ(crashes, 2);
  // Asking for more crashes than machines can absorb is clamped to M - 1.
  const FaultPlan c = FaultPlan::Random(7, 3, 0, 10);
  EXPECT_TRUE(c.Validate(3).ok());
  EXPECT_EQ(c.faults.size(), 2u);
}

// --- RetryPolicy ------------------------------------------------------------

TEST(RetryPolicy, ValidateRejectsDegenerateBudgets) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.Validate().ok());
  policy.max_attempts = 0;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy();
  policy.backoff_seconds = -1.0;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy();
  policy.backoff_multiplier = 0.5;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy();
  policy.message_deadline_seconds = 0.0;
  EXPECT_FALSE(policy.Validate().ok());
}

// --- FaultInjector ----------------------------------------------------------

TEST(FaultInjector, TransientFaultHitsTheScheduledWindowOnly) {
  FaultInjector injector(MustParse("0:dispatch:transient@2x2"));
  EXPECT_TRUE(injector.OnDelivery(0, MessageKind::kDispatch).status.ok());
  const auto second = injector.OnDelivery(0, MessageKind::kDispatch);
  EXPECT_EQ(second.status.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(second.machine_lost);
  EXPECT_EQ(injector.OnDelivery(0, MessageKind::kDispatch).status.code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(injector.OnDelivery(0, MessageKind::kDispatch).status.ok())
      << "the window [2, 4) has passed";
}

TEST(FaultInjector, CountersArePerMachineAndMessageKind) {
  FaultInjector injector(MustParse("1:dispatch:transient@1"));
  // Other machines and other message kinds are untouched by the spec, and
  // their deliveries do not advance machine 1's dispatch counter.
  EXPECT_TRUE(injector.OnDelivery(0, MessageKind::kDispatch).status.ok());
  EXPECT_TRUE(injector.OnDelivery(1, MessageKind::kBroadcast).status.ok());
  EXPECT_TRUE(injector.OnDelivery(1, MessageKind::kCollect).status.ok());
  EXPECT_EQ(injector.OnDelivery(1, MessageKind::kDispatch).status.code(),
            StatusCode::kUnavailable);
}

TEST(FaultInjector, CrashIsPermanent) {
  FaultInjector injector(MustParse("1:collect:crash@2"));
  EXPECT_FALSE(injector.IsDead(1));
  EXPECT_TRUE(injector.OnDelivery(1, MessageKind::kCollect).status.ok());
  const auto crash = injector.OnDelivery(1, MessageKind::kCollect);
  EXPECT_EQ(crash.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(crash.machine_lost);
  EXPECT_TRUE(injector.IsDead(1));
  // Dead is dead: every later delivery to the machine fails, on any kind.
  const auto later = injector.OnDelivery(1, MessageKind::kDispatch);
  EXPECT_EQ(later.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(later.machine_lost);
  EXPECT_FALSE(injector.IsDead(0));
}

TEST(FaultInjector, OverlappingStallsAccumulate) {
  FaultInjector injector(
      MustParse("0:broadcast:stall@1~0.25,0:broadcast:stall@1x2~0.5"));
  const auto first = injector.OnDelivery(0, MessageKind::kBroadcast);
  EXPECT_TRUE(first.status.ok()) << "a stalled delivery still goes through";
  EXPECT_DOUBLE_EQ(first.stall_seconds, 0.75);
  const auto second = injector.OnDelivery(0, MessageKind::kBroadcast);
  EXPECT_DOUBLE_EQ(second.stall_seconds, 0.5);
  EXPECT_DOUBLE_EQ(injector.OnDelivery(0, MessageKind::kBroadcast).stall_seconds,
                   0.0);
}

// --- RecoveryLedger ---------------------------------------------------------

TEST(RecoveryLedger, SnapshotSinceAndPlus) {
  RecoveryLedger ledger;
  ledger.RecordFailedDelivery();
  ledger.RecordRetry(0.001);
  const RecoveryStats begin = ledger.Snapshot();
  ledger.RecordFailedDelivery();
  ledger.RecordRetry(0.002);
  ledger.RecordMachineLost();
  ledger.RecordReprovision(4096, 0.25);
  ledger.RecordStall(0.5);

  const RecoveryStats delta = ledger.Snapshot().Since(begin);
  EXPECT_EQ(delta.failed_deliveries, 1);
  EXPECT_EQ(delta.retries, 1);
  EXPECT_EQ(delta.machines_lost, 1);
  EXPECT_EQ(delta.reprovisions, 1);
  EXPECT_EQ(delta.reshipped_bytes, 4096);
  EXPECT_DOUBLE_EQ(delta.recovery_seconds, 0.002 + 0.25 + 0.5);

  const RecoveryStats sum = begin.Plus(delta);
  EXPECT_EQ(sum.failed_deliveries, 2);
  EXPECT_EQ(sum.retries, 2);
  EXPECT_EQ(sum.reshipped_bytes, 4096);
  EXPECT_FALSE(sum.ToString().empty());
}

// --- Cluster routing under faults -------------------------------------------

TEST(ClusterFaults, ConfigValidatesPlanAndPolicy) {
  ClusterConfig config = FaultyConfig("1:dispatch:transient@1");
  EXPECT_TRUE(config.Validate().ok());
  config.fault_plan = MustParse("5:dispatch:transient@1");
  EXPECT_FALSE(config.Validate().ok()) << "plan machine out of range";
  config = FaultyConfig("1:dispatch:transient@1");
  config.retry.max_attempts = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ClusterFaults, TransientFaultIsRetriedTransparently) {
  auto cluster = Cluster::Create(FaultyConfig("1:dispatch:transient@1"));
  ASSERT_TRUE(cluster.ok());
  Worker w0(0);
  Worker w1(1);
  ASSERT_TRUE((*cluster)->AttachWorker(0, &w0).ok());
  ASSERT_TRUE((*cluster)->AttachWorker(1, &w1).ok());
  std::atomic<int> delivered{0};
  ASSERT_TRUE((*cluster)
                  ->DispatchToWorkers([&delivered](Worker&) {
                    delivered.fetch_add(1);
                    return Status::OK();
                  })
                  .ok())
      << "one transient fault is absorbed by the retry policy";
  EXPECT_EQ(delivered.load(), 2) << "every worker saw exactly one delivery";
  const RecoveryStats stats = (*cluster)->recovery().Snapshot();
  EXPECT_EQ(stats.failed_deliveries, 1);
  EXPECT_EQ(stats.retries, 1);
  EXPECT_EQ(stats.machines_lost, 0);
  EXPECT_GT(stats.recovery_seconds, 0.0) << "backoff costs virtual time";
  EXPECT_GT((*cluster)->DriverSeconds(), 0.0);
}

TEST(ClusterFaults, CollectRetryNeverDoubleCounts) {
  auto cluster = Cluster::Create(FaultyConfig("0:collect:transient@1"));
  ASSERT_TRUE(cluster.ok());
  Worker w0(0);
  Worker w1(1);
  ASSERT_TRUE((*cluster)->AttachWorker(0, &w0).ok());
  ASSERT_TRUE((*cluster)->AttachWorker(1, &w1).ok());
  int gathers = 0;
  ASSERT_TRUE((*cluster)
                  ->CollectFromWorkers([&gathers](Worker&) -> Result<std::int64_t> {
                    ++gathers;
                    return 10;
                  })
                  .ok());
  EXPECT_EQ(gathers, 2) << "the faulted attempt never reached the gather";
  EXPECT_EQ((*cluster)->comm().Snapshot().collect_bytes, 20)
      << "each worker's payload is charged exactly once";
  EXPECT_EQ((*cluster)->recovery().Snapshot().retries, 1);
}

TEST(ClusterFaults, StallPastDeadlineIsRetried) {
  ClusterConfig config = FaultyConfig("0:dispatch:stall@1~0.5");
  config.retry.message_deadline_seconds = 0.25;
  auto cluster = Cluster::Create(config);
  ASSERT_TRUE(cluster.ok());
  Worker w0(0);
  ASSERT_TRUE((*cluster)->AttachWorker(0, &w0).ok());
  std::atomic<int> delivered{0};
  ASSERT_TRUE((*cluster)
                  ->DispatchToWorkers([&delivered](Worker&) {
                    delivered.fetch_add(1);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(delivered.load(), 1);
  // The stall is charged to the machine's virtual clock even though the
  // delivery was abandoned at the deadline.
  EXPECT_GE((*cluster)->MachineComputeSeconds(0), 0.5);
  const RecoveryStats stats = (*cluster)->recovery().Snapshot();
  EXPECT_EQ(stats.failed_deliveries, 1);
  EXPECT_EQ(stats.retries, 1);
}

TEST(ClusterFaults, ShortStallOnlyCostsVirtualTime) {
  auto cluster = Cluster::Create(FaultyConfig("0:dispatch:stall@1~0.01"));
  ASSERT_TRUE(cluster.ok());
  Worker w0(0);
  ASSERT_TRUE((*cluster)->AttachWorker(0, &w0).ok());
  std::atomic<int> delivered{0};
  ASSERT_TRUE((*cluster)
                  ->DispatchToWorkers([&delivered](Worker&) {
                    delivered.fetch_add(1);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(delivered.load(), 1) << "a stall under the deadline goes through";
  EXPECT_GE((*cluster)->MachineComputeSeconds(0), 0.01);
  EXPECT_EQ((*cluster)->recovery().Snapshot().retries, 0);
}

TEST(ClusterFaults, ExhaustedRetryBudgetSurfacesCleanUnavailable) {
  ClusterConfig config = FaultyConfig("0:dispatch:transient@1x10");
  config.retry.max_attempts = 3;
  auto cluster = Cluster::Create(config);
  ASSERT_TRUE(cluster.ok());
  Worker w0(0);
  ASSERT_TRUE((*cluster)->AttachWorker(0, &w0).ok());
  std::atomic<int> delivered{0};
  const Status status = (*cluster)->DispatchToWorkers([&delivered](Worker&) {
    delivered.fetch_add(1);
    return Status::OK();
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("retry budget exhausted"), std::string::npos)
      << status.ToString();
  EXPECT_EQ(delivered.load(), 0) << "every attempt was absorbed by the fault";
  const RecoveryStats stats = (*cluster)->recovery().Snapshot();
  EXPECT_EQ(stats.failed_deliveries, 3);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.machines_lost, 0);
}

TEST(ClusterFaults, FatalHandlerErrorsAreNotRetried) {
  auto cluster = Cluster::Create(FaultyConfig("1:dispatch:transient@1"));
  ASSERT_TRUE(cluster.ok());
  Worker w0(0);
  ASSERT_TRUE((*cluster)->AttachWorker(0, &w0).ok());
  int calls = 0;
  const Status status = (*cluster)->DispatchToWorkers([&calls](Worker&) {
    ++calls;
    return Status::Internal("corrupt partition");
  });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 1) << "fatal codes surface immediately";
  EXPECT_EQ((*cluster)->recovery().Snapshot().retries, 0);
}

TEST(ClusterFaults, CrashDetachesEndpointAndReportsDeadMachine) {
  auto cluster = Cluster::Create(FaultyConfig("1:dispatch:crash@1"));
  ASSERT_TRUE(cluster.ok());
  Worker w0(0);
  Worker w1(1);
  ASSERT_TRUE((*cluster)->AttachWorker(0, &w0).ok());
  ASSERT_TRUE((*cluster)->AttachWorker(1, &w1).ok());
  EXPECT_TRUE((*cluster)->DeadMachines().empty());

  const Status status =
      (*cluster)->DispatchToWorkers([](Worker&) { return Status::OK(); });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ((*cluster)->DeadMachines(), std::vector<int>{1});
  EXPECT_EQ((*cluster)->num_attached_workers(), 1)
      << "the dead machine's endpoint is detached";
  EXPECT_EQ((*cluster)->AttachedWorkerOn(1), nullptr);
  EXPECT_EQ((*cluster)->AttachWorker(1, &w1).code(),
            StatusCode::kFailedPrecondition)
      << "a dead machine's endpoint can never be re-attached";
  const RecoveryStats stats = (*cluster)->recovery().Snapshot();
  EXPECT_EQ(stats.machines_lost, 1);

  // The survivor keeps routing.
  std::atomic<int> delivered{0};
  ASSERT_TRUE((*cluster)
                  ->DispatchToWorkers([&delivered](Worker&) {
                    delivered.fetch_add(1);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(delivered.load(), 1);
}

TEST(ClusterFaults, RoutingAfterTotalLossIsUnavailableNotUsageError) {
  auto cluster = Cluster::Create(FaultyConfig("1:dispatch:crash@1"));
  ASSERT_TRUE(cluster.ok());
  Worker w1(1);
  ASSERT_TRUE((*cluster)->AttachWorker(1, &w1).ok());
  EXPECT_EQ((*cluster)
                ->DispatchToWorkers([](Worker&) { return Status::OK(); })
                .code(),
            StatusCode::kUnavailable);
  // The only endpoint died: routing now reports kUnavailable (retryable, the
  // driver may re-provision) instead of kFailedPrecondition (usage error).
  EXPECT_EQ((*cluster)
                ->DispatchToWorkers([](Worker&) { return Status::OK(); })
                .code(),
            StatusCode::kUnavailable);
}

// --- Re-provisioning lost partitions ----------------------------------------

PlantedTensor MakePlanted(std::uint64_t seed) {
  PlantedSpec spec;
  spec.dim_i = 24;
  spec.dim_j = 28;
  spec.dim_k = 20;
  spec.rank = 4;
  spec.factor_density = 0.2;
  spec.seed = seed;
  return GeneratePlanted(spec).value();
}

TEST(Reprovision, RebuildsLostPartitionsOntoSurvivors) {
  const PlantedTensor p = MakePlanted(51);
  auto cluster =
      Cluster::Create(FaultyConfig("1:dispatch:crash@1", /*machines=*/2));
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE(ProvisionWorkers(**cluster).ok());

  auto unfolding = PartitionedUnfolding::Build(p.tensor, Mode::kOne, 4);
  ASSERT_TRUE(unfolding.ok());
  const UnfoldShape shape = unfolding->shape();
  const std::int64_t num_partitions = unfolding->num_partitions();
  ASSERT_GT(num_partitions, 1);
  {
    std::vector<Partition> parts = std::move(*unfolding).ReleasePartitions();
    for (std::int64_t i = 0; i < num_partitions; ++i) {
      ASSERT_TRUE(StorePartition(**cluster, Mode::kOne, i, std::move(parts[i]),
                                 shape)
                      .ok());
    }
  }
  const CommSnapshot before = (*cluster)->comm().Snapshot();

  // Machine 1 — round-robin owner of the odd partitions — crashes on its
  // first dispatch delivery.
  EXPECT_EQ((*cluster)
                ->DispatchToWorkers([](Worker&) { return Status::OK(); })
                .code(),
            StatusCode::kUnavailable);
  ASSERT_EQ((*cluster)->DeadMachines(), std::vector<int>{1});

  const std::vector<ReprovisionSpec> specs = {
      {Mode::kOne, shape, num_partitions}};
  int rebuilds = 0;
  const UnfoldingRebuilder rebuild =
      [&p, &rebuilds](Mode mode) -> Result<std::vector<Partition>> {
    ++rebuilds;
    auto rebuilt = PartitionedUnfolding::Build(p.tensor, mode, 4);
    if (!rebuilt.ok()) return rebuilt.status();
    return std::move(*rebuilt).ReleasePartitions();
  };
  ASSERT_TRUE(ReprovisionLostPartitions(**cluster, specs, rebuild).ok());
  EXPECT_EQ(rebuilds, 1);

  // Full coverage is restored on the survivor.
  Worker* survivor = (*cluster)->AttachedWorkerOn(0);
  ASSERT_NE(survivor, nullptr);
  ASSERT_EQ(survivor->NumLocalPartitions(Mode::kOne), num_partitions);
  std::vector<std::int64_t> indexes =
      survivor->LocalPartitionIndexes(Mode::kOne);
  std::sort(indexes.begin(), indexes.end());
  for (std::int64_t i = 0; i < num_partitions; ++i) {
    EXPECT_EQ(indexes[static_cast<std::size_t>(i)], i);
  }

  // The reshipped bytes ride the CommStats ledger as shuffles, and the
  // recovery ledger counts one re-provision per lost partition.
  const CommSnapshot after = (*cluster)->comm().Snapshot();
  const RecoveryStats stats = (*cluster)->recovery().Snapshot();
  EXPECT_EQ(stats.reprovisions, num_partitions / 2) << "the odd indexes died";
  EXPECT_GT(stats.reshipped_bytes, 0);
  EXPECT_EQ(after.shuffle_bytes - before.shuffle_bytes, stats.reshipped_bytes);
  EXPECT_EQ(after.shuffle_events - before.shuffle_events, stats.reprovisions);
  EXPECT_GT(stats.recovery_seconds, 0.0);

  // Re-provisioning again is a no-op: nothing is missing anymore.
  ASSERT_TRUE(ReprovisionLostPartitions(**cluster, specs, rebuild).ok());
  EXPECT_EQ(rebuilds, 1)
      << "the rebuilder runs only when partitions are actually missing";
  EXPECT_EQ((*cluster)->comm().Snapshot().shuffle_bytes, after.shuffle_bytes);
}

TEST(Reprovision, FailsCleanlyWhenNoMachineSurvives) {
  const PlantedTensor p = MakePlanted(52);
  ClusterConfig config;
  config.num_machines = 2;
  config.num_threads = 2;
  auto cluster = Cluster::Create(config);
  ASSERT_TRUE(cluster.ok());
  // No workers attached at all: every partition is missing and there is no
  // machine to adopt the rebuilt data.
  auto unfolding = PartitionedUnfolding::Build(p.tensor, Mode::kOne, 2);
  ASSERT_TRUE(unfolding.ok());
  const std::vector<ReprovisionSpec> specs = {
      {Mode::kOne, unfolding->shape(), unfolding->num_partitions()}};
  const UnfoldingRebuilder rebuild =
      [&p](Mode mode) -> Result<std::vector<Partition>> {
    auto rebuilt = PartitionedUnfolding::Build(p.tensor, mode, 2);
    if (!rebuilt.ok()) return rebuilt.status();
    return std::move(*rebuilt).ReleasePartitions();
  };
  EXPECT_EQ(ReprovisionLostPartitions(**cluster, specs, rebuild).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dbtf
