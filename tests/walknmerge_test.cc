#include "walknmerge/walk_n_merge.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "generator/generator.h"

namespace dbtf {
namespace {

SparseTensor TensorWithBlocks(
    const std::vector<std::array<int, 6>>& blocks,  // {i0,i1,j0,j1,k0,k1}
    std::int64_t dim = 40) {
  SparseTensor t = SparseTensor::Create(dim, dim, dim).value();
  for (const auto& b : blocks) {
    for (int i = b[0]; i < b[1]; ++i) {
      for (int j = b[2]; j < b[3]; ++j) {
        for (int k = b[4]; k < b[5]; ++k) {
          t.AddUnchecked(static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(j),
                         static_cast<std::uint32_t>(k));
        }
      }
    }
  }
  t.SortAndDedup();
  return t;
}

TEST(WalkNMergeConfig, Validation) {
  WalkNMergeConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.density_threshold = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = WalkNMergeConfig{};
  config.density_threshold = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = WalkNMergeConfig{};
  config.walk_length = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = WalkNMergeConfig{};
  config.max_blocks = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(WalkNMerge, EmptyTensorYieldsNoBlocks) {
  auto t = SparseTensor::Create(8, 8, 8);
  ASSERT_TRUE(t.ok());
  WalkNMergeConfig config;
  auto r = WalkNMerge(*t, config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_blocks, 0);
  EXPECT_EQ(r->final_error, 0);
}

TEST(WalkNMerge, FindsSingleDenseBlockExactly) {
  const SparseTensor t = TensorWithBlocks({{5, 11, 7, 13, 2, 8}});
  WalkNMergeConfig config;
  config.seed = 1;
  config.density_threshold = 0.95;
  auto r = WalkNMerge(t, config);
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r->num_blocks, 1);
  EXPECT_EQ(r->final_error, 0);
  // The merged block must be exactly the planted box.
  const TensorBlock& block = r->blocks[0];
  EXPECT_EQ(block.is.size(), 6u);
  EXPECT_EQ(block.js.size(), 6u);
  EXPECT_EQ(block.ks.size(), 6u);
  EXPECT_DOUBLE_EQ(block.DensityOf(), 1.0);
}

TEST(WalkNMerge, FindsTwoDisjointBlocks) {
  const SparseTensor t =
      TensorWithBlocks({{0, 6, 0, 6, 0, 6}, {20, 27, 20, 27, 20, 27}});
  WalkNMergeConfig config;
  config.seed = 2;
  config.density_threshold = 0.9;
  auto r = WalkNMerge(t, config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_blocks, 2);
  EXPECT_EQ(r->final_error, 0);
}

TEST(WalkNMerge, FactorsMatchBlocks) {
  const SparseTensor t = TensorWithBlocks({{1, 5, 2, 6, 3, 7}});
  WalkNMergeConfig config;
  config.seed = 3;
  auto r = WalkNMerge(t, config);
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r->num_blocks, 1);
  EXPECT_EQ(r->a.rows(), 40);
  EXPECT_EQ(r->a.cols(), r->num_blocks);
  // Column 0 of A is the indicator of block 0's i-set.
  const TensorBlock& block = r->blocks[0];
  std::int64_t ones = 0;
  for (std::int64_t i = 0; i < r->a.rows(); ++i) {
    if (r->a.Get(i, 0)) ++ones;
  }
  EXPECT_EQ(ones, static_cast<std::int64_t>(block.is.size()));
}

TEST(WalkNMerge, RankTruncationKeepsBestBlocks) {
  const SparseTensor t = TensorWithBlocks(
      {{0, 8, 0, 8, 0, 8},      // volume 512
       {20, 24, 20, 24, 20, 24},  // volume 64
       {30, 34, 0, 4, 30, 34}});  // volume 64
  WalkNMergeConfig config;
  config.seed = 4;
  config.rank = 1;
  auto r = WalkNMerge(t, config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_blocks, 1);
  // The kept block must be the biggest one.
  EXPECT_EQ(r->blocks[0].ones, 512);
}

TEST(WalkNMerge, MinVolumeFiltersTinyBlocks) {
  // A 2x2x2 block is below the 4x4x4 minimum volume.
  const SparseTensor t = TensorWithBlocks({{0, 2, 0, 2, 0, 2}});
  WalkNMergeConfig config;
  config.seed = 5;
  auto r = WalkNMerge(t, config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_blocks, 0);
  EXPECT_EQ(r->final_error, t.NumNonZeros());
}

TEST(WalkNMerge, DeterministicBySeed) {
  const SparseTensor t = TensorWithBlocks({{3, 9, 4, 10, 5, 11}});
  WalkNMergeConfig config;
  config.seed = 6;
  auto a = WalkNMerge(t, config);
  auto b = WalkNMerge(t, config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->num_blocks, b->num_blocks);
  EXPECT_EQ(a->final_error, b->final_error);
  EXPECT_EQ(a->a, b->a);
}

TEST(WalkNMerge, NoisyBlockStillFound) {
  // Dense block with 10% of cells removed: density 0.9.
  SparseTensor t = SparseTensor::Create(30, 30, 30).value();
  int count = 0;
  for (int i = 2; i < 10; ++i) {
    for (int j = 2; j < 10; ++j) {
      for (int k = 2; k < 10; ++k) {
        if (++count % 10 != 0) {
          t.AddUnchecked(static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(j),
                         static_cast<std::uint32_t>(k));
        }
      }
    }
  }
  t.SortAndDedup();
  WalkNMergeConfig config;
  config.seed = 7;
  config.density_threshold = 0.8;
  auto r = WalkNMerge(t, config);
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r->num_blocks, 1);
  // Most of the tensor should be covered by the found block.
  EXPECT_LT(r->final_error, t.NumNonZeros() / 2);
}


TEST(WalkNMerge, TimeBudgetReturnsDeadlineExceeded) {
  const SparseTensor t = TensorWithBlocks({{0, 10, 0, 10, 0, 10}});
  WalkNMergeConfig config;
  config.seed = 8;
  config.num_walks = 10000000;  // Enough work to trip a tiny budget.
  config.time_budget_seconds = 1e-6;
  auto r = WalkNMerge(t, config);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(WalkNMerge, NegativeTimeBudgetRejected) {
  WalkNMergeConfig config;
  config.time_budget_seconds = -1.0;
  EXPECT_FALSE(config.Validate().ok());
}

/// Each phase that can run out of budget (walk, merge, error computation)
/// is reachable deterministically through the budget_clock_for_test seam:
/// the run is seeded, so the Nth clock consultation always lands in the same
/// phase, and expiring exactly there pins the phase named in the status.
TEST(WalkNMerge, BudgetClockHitsEachPhaseDeterministically) {
  const SparseTensor t = TensorWithBlocks({{0, 10, 0, 10, 0, 10}});
  WalkNMergeConfig config;
  config.seed = 9;
  config.num_walks = 100;  // <= 1024: exactly one walk-phase budget check
  config.time_budget_seconds = 1.0;

  // Clean pass under a never-expiring clock: count the consultations. They
  // fall as one walk-phase check, then one per merge candidate, then one per
  // accepted block — so call 1 is the walk phase, call 2 the merge phase,
  // and the final call the error computation.
  std::int64_t total_calls = 0;
  config.budget_clock_for_test = [&total_calls]() {
    ++total_calls;
    return 0.0;
  };
  auto clean = WalkNMerge(t, config);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_GE(clean->num_blocks, 1);
  ASSERT_GE(total_calls, 3) << "all three phases consulted the budget";

  const auto expire_at = [&config](std::int64_t call) {
    auto calls = std::make_shared<std::int64_t>(0);
    config.budget_clock_for_test = [calls, call]() {
      return ++*calls >= call ? 1e9 : 0.0;
    };
  };

  expire_at(1);
  auto walk = WalkNMerge(t, config);
  ASSERT_FALSE(walk.ok());
  EXPECT_EQ(walk.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(walk.status().message().find("walk phase"), std::string::npos)
      << walk.status().ToString();

  expire_at(2);
  auto merge = WalkNMerge(t, config);
  ASSERT_FALSE(merge.ok());
  EXPECT_EQ(merge.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(merge.status().message().find("merge phase"), std::string::npos)
      << merge.status().ToString();

  expire_at(total_calls);
  auto error = WalkNMerge(t, config);
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(error.status().message().find("error computation"),
            std::string::npos)
      << error.status().ToString();
}

}  // namespace
}  // namespace dbtf
