#include "ckpt/checkpoint.h"

#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "tensor/bit_matrix.h"

namespace dbtf {
namespace {

std::string UniqueDir(const std::string& name) {
  static int counter = 0;
  const std::string dir = ::testing::TempDir() + "/ckpt_test_" + name + "_" +
                          std::to_string(counter++);
  // The names repeat across test-binary runs; leftovers from a previous run
  // would change sequence numbering, so start from a clean slate.
  std::filesystem::remove_all(dir);
  return dir;
}

BitMatrix PatternMatrix(std::int64_t rows, std::int64_t cols,
                        std::uint64_t salt) {
  BitMatrix m(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      m.Set(r, c, ((static_cast<std::uint64_t>(r * cols + c) ^ salt) % 3) ==
                      0);
    }
  }
  return m;
}

/// A fully populated state, so the roundtrip test exercises every field of
/// the format. `salt` varies the content between snapshots.
CheckpointState MakeState(std::uint64_t salt) {
  CheckpointState s;
  s.config_fingerprint = 0x1111 + salt;
  s.tensor_fingerprint = 0x2222 + salt;
  s.iteration = 3;
  s.set_index = 1;
  s.mode_index = 2;
  s.next_column = 5;
  s.columns_done = 37 + static_cast<std::int64_t>(salt);
  s.rng_state = {salt + 1, salt + 2, salt + 3, salt + 4};
  s.a = PatternMatrix(6, 4, salt);
  s.b = PatternMatrix(7, 4, salt + 1);
  s.c = PatternMatrix(5, 4, salt + 2);
  s.has_best = true;
  s.best_a = PatternMatrix(6, 4, salt + 3);
  s.best_b = PatternMatrix(7, 4, salt + 4);
  s.best_c = PatternMatrix(5, 4, salt + 5);
  s.best_error = 17;
  s.update_cache_entries = 100;
  s.update_cache_bytes = 800;
  s.update_cells_changed = 12;
  s.update_final_error = 44;
  s.iter_error = 55;
  s.iter_cells_changed = 21;
  s.iter_cache_entries = 110;
  s.iter_cache_bytes = 880;
  s.iteration_errors = {90, 70, 60};
  s.cells_changed = 123;
  s.cache_entries = 140;
  s.cache_bytes = 1120;
  s.checkpoints_written = 4;
  s.shadows[0].initialized = true;
  s.shadows[0].generation = 11 + salt;
  s.shadows[0].content = PatternMatrix(6, 4, salt + 6);
  s.shadows[1].initialized = false;
  s.shadows[2].initialized = true;
  s.shadows[2].generation = 13 + salt;
  s.shadows[2].content = PatternMatrix(5, 4, salt + 7);
  s.comm.shuffle_bytes = 1000;
  s.comm.broadcast_bytes = 2000;
  s.comm.collect_bytes = 3000;
  s.comm.shuffle_events = 1;
  s.comm.broadcast_events = 9;
  s.comm.collect_events = 36;
  s.recovery.failed_deliveries = 2;
  s.recovery.retries = 3;
  s.recovery.machines_lost = 1;
  s.recovery.reprovisions = 6;
  s.recovery.reshipped_bytes = 4096;
  s.recovery.recovery_seconds = 0.25;
  s.fault_delivery_counters = {5, 4, 3, 2, 1, 0};
  s.dead_machines = {1};
  s.machine_seconds = {1.5, 2.5};
  s.driver_seconds = 0.75;
  return s;
}

void ExpectStatesEqual(const CheckpointState& got, const CheckpointState& want) {
  EXPECT_EQ(got.config_fingerprint, want.config_fingerprint);
  EXPECT_EQ(got.tensor_fingerprint, want.tensor_fingerprint);
  EXPECT_EQ(got.iteration, want.iteration);
  EXPECT_EQ(got.set_index, want.set_index);
  EXPECT_EQ(got.mode_index, want.mode_index);
  EXPECT_EQ(got.next_column, want.next_column);
  EXPECT_EQ(got.columns_done, want.columns_done);
  EXPECT_EQ(got.rng_state, want.rng_state);
  EXPECT_TRUE(got.a == want.a);
  EXPECT_TRUE(got.b == want.b);
  EXPECT_TRUE(got.c == want.c);
  EXPECT_EQ(got.has_best, want.has_best);
  if (got.has_best && want.has_best) {
    EXPECT_TRUE(got.best_a == want.best_a);
    EXPECT_TRUE(got.best_b == want.best_b);
    EXPECT_TRUE(got.best_c == want.best_c);
  }
  EXPECT_EQ(got.best_error, want.best_error);
  EXPECT_EQ(got.update_cache_entries, want.update_cache_entries);
  EXPECT_EQ(got.update_cache_bytes, want.update_cache_bytes);
  EXPECT_EQ(got.update_cells_changed, want.update_cells_changed);
  EXPECT_EQ(got.update_final_error, want.update_final_error);
  EXPECT_EQ(got.iter_error, want.iter_error);
  EXPECT_EQ(got.iter_cells_changed, want.iter_cells_changed);
  EXPECT_EQ(got.iter_cache_entries, want.iter_cache_entries);
  EXPECT_EQ(got.iter_cache_bytes, want.iter_cache_bytes);
  EXPECT_EQ(got.iteration_errors, want.iteration_errors);
  EXPECT_EQ(got.cells_changed, want.cells_changed);
  EXPECT_EQ(got.cache_entries, want.cache_entries);
  EXPECT_EQ(got.cache_bytes, want.cache_bytes);
  EXPECT_EQ(got.checkpoints_written, want.checkpoints_written);
  for (int i = 0; i < 3; ++i) {
    SCOPED_TRACE(i);
    const auto& gs = got.shadows[static_cast<std::size_t>(i)];
    const auto& ws = want.shadows[static_cast<std::size_t>(i)];
    EXPECT_EQ(gs.initialized, ws.initialized);
    if (gs.initialized && ws.initialized) {
      EXPECT_EQ(gs.generation, ws.generation);
      EXPECT_TRUE(gs.content == ws.content);
    }
  }
  EXPECT_EQ(got.comm.shuffle_bytes, want.comm.shuffle_bytes);
  EXPECT_EQ(got.comm.broadcast_bytes, want.comm.broadcast_bytes);
  EXPECT_EQ(got.comm.collect_bytes, want.comm.collect_bytes);
  EXPECT_EQ(got.comm.shuffle_events, want.comm.shuffle_events);
  EXPECT_EQ(got.comm.broadcast_events, want.comm.broadcast_events);
  EXPECT_EQ(got.comm.collect_events, want.comm.collect_events);
  EXPECT_EQ(got.recovery.failed_deliveries, want.recovery.failed_deliveries);
  EXPECT_EQ(got.recovery.retries, want.recovery.retries);
  EXPECT_EQ(got.recovery.machines_lost, want.recovery.machines_lost);
  EXPECT_EQ(got.recovery.reprovisions, want.recovery.reprovisions);
  EXPECT_EQ(got.recovery.reshipped_bytes, want.recovery.reshipped_bytes);
  EXPECT_EQ(got.recovery.recovery_seconds, want.recovery.recovery_seconds);
  EXPECT_EQ(got.fault_delivery_counters, want.fault_delivery_counters);
  EXPECT_EQ(got.dead_machines, want.dead_machines);
  EXPECT_EQ(got.machine_seconds, want.machine_seconds);
  EXPECT_EQ(got.driver_seconds, want.driver_seconds);
}

/// Flips one byte in the middle of `path`.
void CorruptFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path;
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_FALSE(bytes.empty()) << path;
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Cuts `path` down to its first half.
void TruncateFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path;
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
}

TEST(CheckpointStoreTest, OpenRejectsBadArguments) {
  EXPECT_FALSE(CheckpointStore::Open("", 3).ok());
  EXPECT_FALSE(CheckpointStore::Open(UniqueDir("badretention"), 0).ok());
}

TEST(CheckpointStoreTest, EmptyStoreHasNoSnapshot) {
  const std::string dir = UniqueDir("empty");
  auto store = CheckpointStore::Open(dir, 3);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(store->ListSequences().empty());
  EXPECT_EQ(store->LoadNewestValid().status().code(), StatusCode::kNotFound);
}

TEST(CheckpointStoreTest, WriteRoundTripsFullState) {
  const std::string dir = UniqueDir("roundtrip");
  auto store = CheckpointStore::Open(dir, 3);
  ASSERT_TRUE(store.ok());
  const CheckpointState want = MakeState(0);
  auto seq = store->Write(want);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  EXPECT_EQ(seq.value(), 1);
  auto got = store->LoadNewestValid();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectStatesEqual(got.value(), want);
}

TEST(CheckpointStoreTest, LoadsTheNewestSnapshot) {
  const std::string dir = UniqueDir("newest");
  auto store = CheckpointStore::Open(dir, 3);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Write(MakeState(1)).ok());
  ASSERT_TRUE(store->Write(MakeState(2)).ok());
  const std::vector<std::int64_t> sequences = store->ListSequences();
  ASSERT_EQ(sequences.size(), 2u);
  EXPECT_EQ(sequences[0], 1);
  EXPECT_EQ(sequences[1], 2);
  auto got = store->LoadNewestValid();
  ASSERT_TRUE(got.ok());
  ExpectStatesEqual(got.value(), MakeState(2));
}

TEST(CheckpointStoreTest, RetentionPrunesOldest) {
  const std::string dir = UniqueDir("retention");
  auto store = CheckpointStore::Open(dir, 2);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Write(MakeState(1)).ok());
  ASSERT_TRUE(store->Write(MakeState(2)).ok());
  ASSERT_TRUE(store->Write(MakeState(3)).ok());
  const std::vector<std::int64_t> sequences = store->ListSequences();
  ASSERT_EQ(sequences.size(), 2u);
  EXPECT_EQ(sequences[0], 2);
  EXPECT_EQ(sequences[1], 3);
  auto got = store->LoadNewestValid();
  ASSERT_TRUE(got.ok());
  ExpectStatesEqual(got.value(), MakeState(3));
}

TEST(CheckpointStoreTest, ReopenContinuesTheSequence) {
  const std::string dir = UniqueDir("reopen");
  {
    auto store = CheckpointStore::Open(dir, 3);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Write(MakeState(1)).ok());
  }
  auto store = CheckpointStore::Open(dir, 3);
  ASSERT_TRUE(store.ok());
  auto seq = store->Write(MakeState(2));
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq.value(), 2);
}

TEST(CheckpointStoreTest, CorruptNewestManifestFallsBack) {
  const std::string dir = UniqueDir("corrupt_manifest");
  auto store = CheckpointStore::Open(dir, 3);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Write(MakeState(1)).ok());
  ASSERT_TRUE(store->Write(MakeState(2)).ok());
  CorruptFile(dir + "/ckpt-2/MANIFEST");
  auto got = store->LoadNewestValid();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectStatesEqual(got.value(), MakeState(1));
}

TEST(CheckpointStoreTest, TruncatedManifestFallsBack) {
  const std::string dir = UniqueDir("truncated_manifest");
  auto store = CheckpointStore::Open(dir, 3);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Write(MakeState(1)).ok());
  ASSERT_TRUE(store->Write(MakeState(2)).ok());
  TruncateFile(dir + "/ckpt-2/MANIFEST");
  auto got = store->LoadNewestValid();
  ASSERT_TRUE(got.ok());
  ExpectStatesEqual(got.value(), MakeState(1));
}

TEST(CheckpointStoreTest, CorruptBlobFallsBack) {
  const std::string dir = UniqueDir("corrupt_blob");
  auto store = CheckpointStore::Open(dir, 3);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Write(MakeState(1)).ok());
  ASSERT_TRUE(store->Write(MakeState(2)).ok());
  CorruptFile(dir + "/ckpt-2/factors.bin");
  auto got = store->LoadNewestValid();
  ASSERT_TRUE(got.ok());
  ExpectStatesEqual(got.value(), MakeState(1));
}

TEST(CheckpointStoreTest, MissingBlobFallsBack) {
  const std::string dir = UniqueDir("missing_blob");
  auto store = CheckpointStore::Open(dir, 3);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Write(MakeState(1)).ok());
  ASSERT_TRUE(store->Write(MakeState(2)).ok());
  ASSERT_EQ(std::remove((dir + "/ckpt-2/dist.bin").c_str()), 0);
  auto got = store->LoadNewestValid();
  ASSERT_TRUE(got.ok());
  ExpectStatesEqual(got.value(), MakeState(1));
}

TEST(CheckpointStoreTest, EverySnapshotCorruptIsNotFound) {
  const std::string dir = UniqueDir("all_corrupt");
  auto store = CheckpointStore::Open(dir, 3);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Write(MakeState(1)).ok());
  ASSERT_TRUE(store->Write(MakeState(2)).ok());
  CorruptFile(dir + "/ckpt-1/MANIFEST");
  CorruptFile(dir + "/ckpt-2/run.bin");
  EXPECT_EQ(store->LoadNewestValid().status().code(), StatusCode::kNotFound);
}

TEST(CheckpointStoreTest, UnpublishedTmpDirIsIgnoredAndReplaced) {
  const std::string dir = UniqueDir("tmp_leftover");
  auto store = CheckpointStore::Open(dir, 3);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Write(MakeState(1)).ok());
  // Fake the leftovers of a writer killed mid-write: a stale tmp dir for the next
  // sequence. It must not show up as a snapshot, and the next Write must
  // replace it cleanly.
  ASSERT_EQ(::mkdir((dir + "/ckpt-2.tmp").c_str(), 0755), 0);
  {
    std::ofstream stale(dir + "/ckpt-2.tmp/MANIFEST", std::ios::binary);
    stale << "half-written garbage";
  }
  EXPECT_EQ(store->ListSequences().size(), 1u);
  auto seq = store->Write(MakeState(2));
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  EXPECT_EQ(seq.value(), 2);
  auto got = store->LoadNewestValid();
  ASSERT_TRUE(got.ok());
  ExpectStatesEqual(got.value(), MakeState(2));
}

TEST(CheckpointStoreTest, ZeroDimensionMatricesRoundTrip) {
  // A checkpoint taken before `best` exists carries default-constructed
  // matrices; they must survive the roundtrip as empty.
  const std::string dir = UniqueDir("empty_matrices");
  auto store = CheckpointStore::Open(dir, 1);
  ASSERT_TRUE(store.ok());
  CheckpointState s = MakeState(0);
  s.has_best = false;
  s.best_a = BitMatrix();
  s.best_b = BitMatrix();
  s.best_c = BitMatrix();
  s.fault_delivery_counters.clear();
  s.dead_machines.clear();
  ASSERT_TRUE(store->Write(s).ok());
  auto got = store->LoadNewestValid();
  ASSERT_TRUE(got.ok());
  ExpectStatesEqual(got.value(), s);
}

}  // namespace
}  // namespace dbtf
