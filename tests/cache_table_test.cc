#include "dbtf/cache_table.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/bitspan.h"
#include "common/kernels/kernels.h"
#include "common/random.h"

namespace dbtf {
namespace {

/// Reference: OR of the ms_t rows selected by key, full width.
std::vector<BitWord> NaiveSummation(const BitMatrix& ms_t, std::uint64_t key) {
  std::vector<BitWord> out(static_cast<std::size_t>(ms_t.words_per_row()), 0);
  const MutableBitSpan sum(out.data(), static_cast<std::size_t>(ms_t.cols()));
  ForEachSetBit(BitSpan(&key, static_cast<std::size_t>(ms_t.rows())),
                [&](std::size_t r) {
    Kernels().or_into(sum, ms_t.Row(static_cast<std::int64_t>(r)));
  });
  return out;
}

/// Wraps a scratch vector as a word-aligned mutable span for Lookup.
MutableBitSpan Scratch(std::vector<BitWord>& words) {
  return MutableBitSpan(words.data(), words.size() * kBitsPerWord);
}

TEST(CacheTable, BuildValidation) {
  BitMatrix ms_t(4, 16);
  EXPECT_FALSE(CacheTable::Build(ms_t, 0).ok());
  EXPECT_FALSE(CacheTable::Build(ms_t, 25).ok());
  EXPECT_TRUE(CacheTable::Build(ms_t, 1).ok());
  EXPECT_FALSE(CacheTable::Build(BitMatrix(65, 8), 10).ok());
}

TEST(CacheTable, GroupCountsMatchLemmaTwo) {
  Rng rng(1);
  const BitMatrix ms_t = BitMatrix::Random(18, 32, 0.3, &rng);
  // R=18, V=10 -> ceil(18/10)=2 groups, sizes 10 and 8 -> 2^10 + 2^8 entries.
  auto cache = CacheTable::Build(ms_t, 10);
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ(cache->num_groups(), 2);
  EXPECT_EQ(cache->total_entries(), (1 << 10) + (1 << 8));
  // R <= V -> one table of 2^R.
  auto single = CacheTable::Build(ms_t, 20);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->num_groups(), 1);
  EXPECT_EQ(single->total_entries(), 1 << 18);
}

TEST(CacheTable, MemoryBytesMatchesEntries) {
  Rng rng(2);
  const BitMatrix ms_t = BitMatrix::Random(6, 130, 0.3, &rng);
  auto cache = CacheTable::Build(ms_t, 10);
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ(cache->memory_bytes(),
            cache->total_entries() * ms_t.words_per_row() * 8);
}

TEST(CacheTable, ZeroKeyIsAllZero) {
  Rng rng(3);
  const BitMatrix ms_t = BitMatrix::Random(5, 100, 0.5, &rng);
  auto cache = CacheTable::Build(ms_t, 15);
  ASSERT_TRUE(cache.ok());
  std::vector<BitWord> scratch(
      static_cast<std::size_t>(ms_t.words_per_row()));
  const BitSpan row = cache->Lookup(0, 0, ms_t.words_per_row(),
                                    Scratch(scratch));
  EXPECT_TRUE(Kernels().all_zero(row));
}

/// Property: every key's lookup equals the naive OR, across (rank, V, width)
/// combinations covering single-group, multi-group, and multi-word rows.
class CacheLookupProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CacheLookupProperty, AllKeysMatchNaive) {
  const auto [rank, v, width] = GetParam();
  Rng rng(static_cast<std::uint64_t>(rank * 100 + v));
  const BitMatrix ms_t = BitMatrix::Random(rank, width, 0.3, &rng);
  auto cache = CacheTable::Build(ms_t, v);
  ASSERT_TRUE(cache.ok());
  const std::int64_t words = ms_t.words_per_row();
  std::vector<BitWord> scratch(static_cast<std::size_t>(words));

  const std::uint64_t key_space = std::uint64_t{1} << rank;
  // Exhaustive for small ranks, sampled beyond 2^12 keys.
  const bool exhaustive = key_space <= 4096;
  const std::int64_t trials =
      exhaustive ? static_cast<std::int64_t>(key_space) : 4096;
  for (std::int64_t t = 0; t < trials; ++t) {
    const std::uint64_t key =
        exhaustive ? static_cast<std::uint64_t>(t)
                   : rng.NextBounded(key_space);
    const BitSpan got = cache->Lookup(key, 0, words, Scratch(scratch));
    const std::vector<BitWord> want = NaiveSummation(ms_t, key);
    for (std::int64_t w = 0; w < words; ++w) {
      ASSERT_EQ(got.word(static_cast<std::size_t>(w)),
                want[static_cast<std::size_t>(w)])
          << "key=" << key << " word=" << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RankVWidth, CacheLookupProperty,
    ::testing::Values(std::make_tuple(1, 15, 10),     // trivial
                      std::make_tuple(8, 15, 64),     // single group
                      std::make_tuple(10, 4, 100),    // 3 groups
                      std::make_tuple(12, 5, 130),    // 3 groups, multiword
                      std::make_tuple(16, 8, 40),     // 2 groups
                      std::make_tuple(20, 7, 257),    // 3 groups, wide
                      std::make_tuple(24, 24, 65)));  // big single group

TEST(CacheTable, WordRangeSlicing) {
  Rng rng(7);
  const BitMatrix ms_t = BitMatrix::Random(6, 300, 0.4, &rng);
  auto cache = CacheTable::Build(ms_t, 15);
  ASSERT_TRUE(cache.ok());
  const std::int64_t words = ms_t.words_per_row();
  std::vector<BitWord> scratch(static_cast<std::size_t>(words));
  for (std::uint64_t key : {1ull, 17ull, 63ull}) {
    const std::vector<BitWord> full = NaiveSummation(ms_t, key);
    for (std::int64_t begin = 0; begin < words; ++begin) {
      const std::int64_t count = words - begin;
      const BitSpan got = cache->Lookup(key, begin, count, Scratch(scratch));
      for (std::int64_t w = 0; w < count; ++w) {
        ASSERT_EQ(got.word(static_cast<std::size_t>(w)),
                  full[static_cast<std::size_t>(begin + w)]);
      }
    }
  }
}

TEST(CacheTable, DisabledModeMatchesEnabled) {
  Rng rng(8);
  const BitMatrix ms_t = BitMatrix::Random(9, 120, 0.35, &rng);
  auto enabled = CacheTable::Build(ms_t, 4);
  auto disabled = CacheTable::Build(ms_t, 4, /*enabled=*/false);
  ASSERT_TRUE(enabled.ok() && disabled.ok());
  EXPECT_TRUE(enabled->enabled());
  EXPECT_FALSE(disabled->enabled());
  EXPECT_EQ(disabled->total_entries(), 0);
  EXPECT_EQ(disabled->memory_bytes(), 0);
  const std::int64_t words = ms_t.words_per_row();
  std::vector<BitWord> scratch_a(static_cast<std::size_t>(words));
  std::vector<BitWord> scratch_b(static_cast<std::size_t>(words));
  for (std::uint64_t key = 0; key < 512; ++key) {
    const BitSpan a = enabled->Lookup(key, 0, words, Scratch(scratch_a));
    const BitSpan b = disabled->Lookup(key, 0, words, Scratch(scratch_b));
    for (std::int64_t w = 0; w < words; ++w) {
      ASSERT_EQ(a.word(static_cast<std::size_t>(w)),
                b.word(static_cast<std::size_t>(w)))
          << "key=" << key;
    }
  }
}

TEST(CacheTable, SingleGroupLookupIsZeroCopy) {
  Rng rng(9);
  const BitMatrix ms_t = BitMatrix::Random(6, 64, 0.5, &rng);
  auto cache = CacheTable::Build(ms_t, 15);
  ASSERT_TRUE(cache.ok());
  std::vector<BitWord> scratch(1, BitWord{0xDEADBEEF});
  const BitSpan row = cache->Lookup(5, 0, 1, Scratch(scratch));
  EXPECT_NE(row.data(), scratch.data())
      << "single-group lookups must point into the table";
  EXPECT_EQ(scratch[0], BitWord{0xDEADBEEF}) << "scratch untouched";
}


TEST(CacheTable, LazyMaterialization) {
  Rng rng(11);
  const BitMatrix ms_t = BitMatrix::Random(12, 128, 0.4, &rng);
  auto cache = CacheTable::Build(ms_t, 15);
  ASSERT_TRUE(cache.ok());
  // Only entry 0 exists up front.
  EXPECT_EQ(cache->entries_built(), 1);
  std::vector<BitWord> scratch(static_cast<std::size_t>(ms_t.words_per_row()));
  // Probing key 0b101 materializes at most its ancestor chain (pop = 2).
  cache->Lookup(0b101, 0, ms_t.words_per_row(), Scratch(scratch));
  EXPECT_LE(cache->entries_built(), 3);
  const std::int64_t after_first = cache->entries_built();
  // Probing the same key again builds nothing new.
  cache->Lookup(0b101, 0, ms_t.words_per_row(), Scratch(scratch));
  EXPECT_EQ(cache->entries_built(), after_first);
  // Built entries never exceed capacity.
  EXPECT_LE(cache->entries_built(), cache->total_entries());
}

TEST(CacheTable, LazyEntriesAreCorrectInAnyProbeOrder) {
  Rng rng(12);
  const BitMatrix ms_t = BitMatrix::Random(10, 90, 0.3, &rng);
  // Probe keys high-to-low so deep chains materialize before shallow ones.
  auto cache = CacheTable::Build(ms_t, 15);
  ASSERT_TRUE(cache.ok());
  const std::int64_t words = ms_t.words_per_row();
  std::vector<BitWord> scratch(static_cast<std::size_t>(words));
  for (std::int64_t key = 1023; key >= 0; --key) {
    const BitSpan got =
        cache->Lookup(static_cast<std::uint64_t>(key), 0, words,
                      Scratch(scratch));
    const std::vector<BitWord> want =
        NaiveSummation(ms_t, static_cast<std::uint64_t>(key));
    for (std::int64_t w = 0; w < words; ++w) {
      ASSERT_EQ(got.word(static_cast<std::size_t>(w)),
                want[static_cast<std::size_t>(w)])
          << "key=" << key;
    }
  }
  EXPECT_EQ(cache->entries_built(), 1024) << "all entries eventually built";
}

}  // namespace
}  // namespace dbtf
