// Cross-cutting property tests: algebraic identities and invariants that tie
// several modules together, swept over parameter grids.

#include <gtest/gtest.h>

#include <tuple>

#include "common/random.h"
#include "dbtf/dbtf.h"
#include "eval/metrics.h"
#include "generator/generator.h"
#include "tensor/boolean_ops.h"
#include "tensor/unfold.h"
#include "test_util.h"

namespace dbtf {
namespace {

/// Boolean matrix product is associative: (A o B) o C == A o (B o C).
class BooleanProductAssociativity : public ::testing::TestWithParam<int> {};

TEST_P(BooleanProductAssociativity, Holds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const BitMatrix a = BitMatrix::Random(7, 9, 0.3, &rng);
  const BitMatrix b = BitMatrix::Random(9, 5, 0.3, &rng);
  const BitMatrix c = BitMatrix::Random(5, 11, 0.3, &rng);
  auto left = BooleanProduct(BooleanProduct(a, b).value(), c);
  auto right = BooleanProduct(a, BooleanProduct(b, c).value());
  ASSERT_TRUE(left.ok() && right.ok());
  EXPECT_EQ(*left, *right);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BooleanProductAssociativity,
                         ::testing::Range(1, 9));

/// Boolean product is monotone: adding 1s to an operand never removes 1s
/// from the product.
TEST(BooleanProductProperties, Monotonicity) {
  Rng rng(42);
  const BitMatrix a = BitMatrix::Random(8, 6, 0.25, &rng);
  const BitMatrix b = BitMatrix::Random(6, 10, 0.25, &rng);
  BitMatrix a_more = a;
  a_more.Set(3, 2, true);
  a_more.Set(7, 5, true);
  auto base = BooleanProduct(a, b);
  auto more = BooleanProduct(a_more, b);
  ASSERT_TRUE(base.ok() && more.ok());
  for (std::int64_t i = 0; i < base->rows(); ++i) {
    for (std::int64_t j = 0; j < base->cols(); ++j) {
      if (base->Get(i, j)) {
        EXPECT_TRUE(more->Get(i, j));
      }
    }
  }
}

/// Reconstruction is invariant to permuting the rank-1 components (Boolean
/// sums commute).
TEST(ReconstructionProperties, ComponentPermutationInvariance) {
  Rng rng(7);
  const BitMatrix a = BitMatrix::Random(10, 4, 0.3, &rng);
  const BitMatrix b = BitMatrix::Random(10, 4, 0.3, &rng);
  const BitMatrix c = BitMatrix::Random(10, 4, 0.3, &rng);
  const int perm[4] = {2, 0, 3, 1};
  BitMatrix pa(10, 4), pb(10, 4), pc(10, 4);
  for (std::int64_t r = 0; r < 10; ++r) {
    for (int col = 0; col < 4; ++col) {
      pa.Set(r, perm[col], a.Get(r, col));
      pb.Set(r, perm[col], b.Get(r, col));
      pc.Set(r, perm[col], c.Get(r, col));
    }
  }
  auto x1 = ReconstructTensor(a, b, c);
  auto x2 = ReconstructTensor(pa, pb, pc);
  ASSERT_TRUE(x1.ok() && x2.ok());
  EXPECT_EQ(*x1, *x2);
}

/// Duplicating a component never changes the reconstruction (idempotence of
/// the Boolean sum).
TEST(ReconstructionProperties, DuplicateComponentIdempotent) {
  Rng rng(8);
  const BitMatrix a = BitMatrix::Random(9, 2, 0.35, &rng);
  const BitMatrix b = BitMatrix::Random(9, 2, 0.35, &rng);
  const BitMatrix c = BitMatrix::Random(9, 2, 0.35, &rng);
  BitMatrix a3(9, 3), b3(9, 3), c3(9, 3);
  for (std::int64_t r = 0; r < 9; ++r) {
    for (int col = 0; col < 2; ++col) {
      a3.Set(r, col, a.Get(r, col));
      b3.Set(r, col, b.Get(r, col));
      c3.Set(r, col, c.Get(r, col));
    }
    a3.Set(r, 2, a.Get(r, 0));
    b3.Set(r, 2, b.Get(r, 0));
    c3.Set(r, 2, c.Get(r, 0));
  }
  auto x2 = ReconstructTensor(a, b, c);
  auto x3 = ReconstructTensor(a3, b3, c3);
  ASSERT_TRUE(x2.ok() && x3.ok());
  EXPECT_EQ(*x2, *x3);
}

/// The reconstruction error is the same no matter which mode's matricized
/// form evaluates it (the error is a property of the tensor, Eq. 12).
class ModeErrorConsistency : public ::testing::TestWithParam<int> {};

TEST_P(ModeErrorConsistency, AllThreeMatricizationsAgree) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  const SparseTensor x = testing::RandomTensor(11, 9, 13, 0.12, seed);
  const BitMatrix a = BitMatrix::Random(11, 4, 0.3, &rng);
  const BitMatrix b = BitMatrix::Random(9, 4, 0.3, &rng);
  const BitMatrix c = BitMatrix::Random(13, 4, 0.3, &rng);

  std::int64_t errors[3];
  int idx = 0;
  for (const Mode mode : {Mode::kOne, Mode::kTwo, Mode::kThree}) {
    auto unfolded = DenseUnfold(x, mode);
    ASSERT_TRUE(unfolded.ok());
    const BitMatrix* factor = nullptr;
    const BitMatrix* mf = nullptr;
    const BitMatrix* ms = nullptr;
    switch (mode) {
      case Mode::kOne:
        factor = &a;
        mf = &c;
        ms = &b;
        break;
      case Mode::kTwo:
        factor = &b;
        mf = &c;
        ms = &a;
        break;
      case Mode::kThree:
        factor = &c;
        mf = &b;
        ms = &a;
        break;
    }
    auto krt = KhatriRao(*mf, *ms);
    ASSERT_TRUE(krt.ok());
    auto recon = BooleanProduct(*factor, krt->Transpose());
    ASSERT_TRUE(recon.ok());
    errors[idx++] = recon->HammingDistance(*unfolded);
  }
  EXPECT_EQ(errors[0], errors[1]);
  EXPECT_EQ(errors[1], errors[2]);
  // And both agree with the sparse evaluator.
  auto sparse_error = ReconstructionError(x, a, b, c);
  ASSERT_TRUE(sparse_error.ok());
  EXPECT_EQ(errors[0], *sparse_error);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModeErrorConsistency, ::testing::Range(1, 7));

/// DBTF's result is invariant to the cache split threshold V across a grid
/// (V only trades space for time, Lemma 2).
class VInvariance : public ::testing::TestWithParam<int> {};

TEST_P(VInvariance, SameFactorsForEveryV) {
  const int v = GetParam();
  PlantedSpec spec;
  spec.dim_i = 20;
  spec.dim_j = 22;
  spec.dim_k = 18;
  spec.rank = 9;
  spec.factor_density = 0.2;
  spec.seed = 19;
  auto p = GeneratePlanted(spec);
  ASSERT_TRUE(p.ok());

  DbtfConfig reference;
  reference.rank = 9;
  reference.max_iterations = 4;
  reference.cache_group_size = 15;
  reference.seed = 2;
  reference.cluster.num_threads = 1;
  auto want = Dbtf::Factorize(p->tensor, reference);
  ASSERT_TRUE(want.ok());

  DbtfConfig config = reference;
  config.cache_group_size = v;
  auto got = Dbtf::Factorize(p->tensor, config);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->a, want->a);
  EXPECT_EQ(got->b, want->b);
  EXPECT_EQ(got->c, want->c);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, VInvariance,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 9, 12, 24));

/// Recovery quality degrades gracefully with noise: across a noise grid the
/// factorization error stays within a constant factor of the noise floor.
class NoiseGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(NoiseGrid, ErrorTracksNoiseFloor) {
  const auto [additive, destructive] = GetParam();
  PlantedSpec spec;
  spec.dim_i = 28;
  spec.dim_j = 28;
  spec.dim_k = 28;
  spec.rank = 4;
  spec.factor_density = 0.15;
  spec.additive_noise = additive;
  spec.destructive_noise = destructive;
  spec.seed = 23;
  auto p = GeneratePlanted(spec);
  ASSERT_TRUE(p.ok());
  if (p->tensor.NumNonZeros() == 0) GTEST_SKIP();

  DbtfConfig config;
  config.rank = 4;
  config.max_iterations = 10;
  config.num_initial_sets = 6;
  config.seed = 5;
  config.cluster.num_threads = 2;
  auto r = Dbtf::Factorize(p->tensor, config);
  ASSERT_TRUE(r.ok());

  // Floor: the planted truth's own error on the noisy observation.
  auto floor = ReconstructionError(p->tensor, p->a, p->b, p->c);
  ASSERT_TRUE(floor.ok());
  EXPECT_LE(r->final_error,
            std::max<std::int64_t>(3 * *floor, p->tensor.NumNonZeros() / 2))
      << "additive=" << additive << " destructive=" << destructive;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NoiseGrid,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.2),
                       ::testing::Values(0.0, 0.05, 0.15)));

/// Factorizing a tensor and its reconstruction's reconstruction agree: the
/// reconstruction of recovered factors is a fixed point under re-evaluation.
TEST(PipelineProperties, ErrorOfReconstructionIsZero) {
  PlantedSpec spec;
  spec.dim_i = 18;
  spec.dim_j = 18;
  spec.dim_k = 18;
  spec.rank = 3;
  spec.factor_density = 0.2;
  spec.seed = 29;
  auto p = GeneratePlanted(spec);
  ASSERT_TRUE(p.ok());
  DbtfConfig config;
  config.rank = 3;
  config.max_iterations = 6;
  config.cluster.num_threads = 1;
  auto r = Dbtf::Factorize(p->tensor, config);
  ASSERT_TRUE(r.ok());
  auto recon = ReconstructTensor(r->a, r->b, r->c);
  ASSERT_TRUE(recon.ok());
  auto err = ReconstructionError(*recon, r->a, r->b, r->c);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(*err, 0);
}

/// Relative error and coverage are consistent for factorizations that only
/// under-cover (never predict spurious ones): error = (1 - coverage) * nnz.
TEST(PipelineProperties, SubsetFactorErrorMatchesCoverage) {
  PlantedSpec spec;
  spec.dim_i = 16;
  spec.dim_j = 16;
  spec.dim_k = 16;
  spec.rank = 4;
  spec.factor_density = 0.2;
  spec.seed = 31;
  auto p = GeneratePlanted(spec);
  ASSERT_TRUE(p.ok());
  // Keep only the first 2 of 4 planted components: a strict under-cover.
  BitMatrix a2(16, 2), b2(16, 2), c2(16, 2);
  for (std::int64_t r = 0; r < 16; ++r) {
    for (int col = 0; col < 2; ++col) {
      a2.Set(r, col, p->a.Get(r, col));
      b2.Set(r, col, p->b.Get(r, col));
      c2.Set(r, col, p->c.Get(r, col));
    }
  }
  auto err = ReconstructionError(p->tensor, a2, b2, c2);
  auto cov = CoverageOfOnes(p->tensor, a2, b2, c2);
  ASSERT_TRUE(err.ok() && cov.ok());
  const double expected =
      (1.0 - *cov) * static_cast<double>(p->tensor.NumNonZeros());
  EXPECT_NEAR(static_cast<double>(*err), expected, 1e-6);
}

}  // namespace
}  // namespace dbtf
