#include "common/serde.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"

namespace dbtf {
namespace {

TEST(Crc32Test, MatchesIeeeTestVector) {
  // The canonical CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInputIsZero) { EXPECT_EQ(Crc32("", 0), 0u); }

TEST(Crc32Test, SensitiveToEveryByte) {
  const std::string a = "checkpoint";
  std::string b = a;
  b[3] ^= 0x01;
  EXPECT_NE(Crc32(a.data(), a.size()), Crc32(b.data(), b.size()));
}

TEST(Fnv1a64Test, DistinguishesContent) {
  const std::string a = "config-a";
  const std::string b = "config-b";
  EXPECT_NE(Fnv1a64(a.data(), a.size()), Fnv1a64(b.data(), b.size()));
  EXPECT_EQ(Fnv1a64(a.data(), a.size()), Fnv1a64(a.data(), a.size()));
}

TEST(Fnv1a64Test, EmptyInputIsOffsetBasis) {
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ull);
}

TEST(SerdeTest, RoundTripsEveryType) {
  ByteWriter w;
  w.WriteU8(0xAB);
  w.WriteU32(0xDEADBEEFu);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteI64(-42);
  w.WriteI64(std::numeric_limits<std::int64_t>::min());
  w.WriteDouble(3.141592653589793);
  w.WriteString("factor");
  w.WriteString("");  // empty strings round-trip too

  ByteReader r(w.bytes());
  ASSERT_TRUE(r.ReadU8().ok());
  ByteReader r2(w.bytes());
  EXPECT_EQ(r2.ReadU8().value(), 0xAB);
  EXPECT_EQ(r2.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r2.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r2.ReadI64().value(), -42);
  EXPECT_EQ(r2.ReadI64().value(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r2.ReadDouble().value(), 3.141592653589793);
  EXPECT_EQ(r2.ReadString().value(), "factor");
  EXPECT_EQ(r2.ReadString().value(), "");
  EXPECT_TRUE(r2.ExpectEnd().ok());
}

TEST(SerdeTest, LittleEndianOnTheWire) {
  ByteWriter w;
  w.WriteU32(0x01020304u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[1], 0x03);
  EXPECT_EQ(w.bytes()[2], 0x02);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(SerdeTest, RawBytesRoundTrip) {
  const std::uint8_t payload[4] = {1, 2, 3, 4};
  ByteWriter w;
  w.WriteBytes(payload, sizeof(payload));
  ByteReader r(w.bytes());
  std::uint8_t out[4] = {0, 0, 0, 0};
  ASSERT_TRUE(r.ReadBytes(out, sizeof(out)).ok());
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[3], 4);
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(SerdeTest, TruncationFailsEveryReader) {
  ByteWriter w;
  w.WriteU64(7);
  // Chop one byte off; every multi-byte read past the end must fail with
  // kIoError instead of reading out of bounds.
  ByteReader r(w.bytes().data(), w.size() - 1);
  EXPECT_EQ(r.ReadU64().status().code(), StatusCode::kIoError);

  ByteReader empty(w.bytes().data(), 0);
  EXPECT_EQ(empty.ReadU8().status().code(), StatusCode::kIoError);
  EXPECT_EQ(empty.ReadU32().status().code(), StatusCode::kIoError);
  EXPECT_EQ(empty.ReadI64().status().code(), StatusCode::kIoError);
  EXPECT_EQ(empty.ReadDouble().status().code(), StatusCode::kIoError);
  EXPECT_EQ(empty.ReadString().status().code(), StatusCode::kIoError);
  std::uint8_t sink = 0;
  EXPECT_EQ(empty.ReadBytes(&sink, 1).code(), StatusCode::kIoError);
}

TEST(SerdeTest, StringLengthBeyondBufferIsRejected) {
  // A length prefix claiming more bytes than remain must fail before any
  // allocation, not over-read.
  ByteWriter w;
  w.WriteU64(1000);  // claims a 1000-byte string...
  w.WriteU8('x');    // ...but only one byte follows
  ByteReader r(w.bytes());
  EXPECT_EQ(r.ReadString().status().code(), StatusCode::kIoError);
}

TEST(SerdeTest, TrailingBytesAreRejected) {
  ByteWriter w;
  w.WriteU32(5);
  w.WriteU8(0xFF);  // one stray byte after the parsed prefix
  ByteReader r(w.bytes());
  ASSERT_TRUE(r.ReadU32().ok());
  EXPECT_EQ(r.ExpectEnd().code(), StatusCode::kIoError);
  ASSERT_TRUE(r.ReadU8().ok());
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(SerdeTest, WriterCrcTracksContent) {
  ByteWriter w;
  EXPECT_EQ(w.Crc(), 0u);
  w.WriteString("123456789");
  // The string is length-prefixed, so the CRC covers prefix + payload.
  EXPECT_EQ(w.Crc(), Crc32(w.bytes().data(), w.size()));
  const std::uint32_t before = w.Crc();
  w.WriteU8(0);
  EXPECT_NE(w.Crc(), before);
}

TEST(SerdeTest, OffsetAndRemainingTrackReads) {
  ByteWriter w;
  w.WriteU32(1);
  w.WriteU32(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.offset(), 0u);
  EXPECT_EQ(r.remaining(), 8u);
  ASSERT_TRUE(r.ReadU32().ok());
  EXPECT_EQ(r.offset(), 4u);
  EXPECT_EQ(r.remaining(), 4u);
}

}  // namespace
}  // namespace dbtf
