#include "common/serde.h"

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "dbtf/partition.h"
#include "dist/messages.h"
#include "dist/transport/wire.h"
#include "tensor/bit_matrix.h"
#include "test_util.h"

namespace dbtf {
namespace {

TEST(Crc32Test, MatchesIeeeTestVector) {
  // The canonical CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInputIsZero) { EXPECT_EQ(Crc32("", 0), 0u); }

TEST(Crc32Test, SensitiveToEveryByte) {
  const std::string a = "checkpoint";
  std::string b = a;
  b[3] ^= 0x01;
  EXPECT_NE(Crc32(a.data(), a.size()), Crc32(b.data(), b.size()));
}

TEST(Fnv1a64Test, DistinguishesContent) {
  const std::string a = "config-a";
  const std::string b = "config-b";
  EXPECT_NE(Fnv1a64(a.data(), a.size()), Fnv1a64(b.data(), b.size()));
  EXPECT_EQ(Fnv1a64(a.data(), a.size()), Fnv1a64(a.data(), a.size()));
}

TEST(Fnv1a64Test, EmptyInputIsOffsetBasis) {
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ull);
}

TEST(SerdeTest, RoundTripsEveryType) {
  ByteWriter w;
  w.WriteU8(0xAB);
  w.WriteU32(0xDEADBEEFu);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteI64(-42);
  w.WriteI64(std::numeric_limits<std::int64_t>::min());
  w.WriteDouble(3.141592653589793);
  w.WriteString("factor");
  w.WriteString("");  // empty strings round-trip too

  ByteReader r(w.bytes());
  ASSERT_TRUE(r.ReadU8().ok());
  ByteReader r2(w.bytes());
  EXPECT_EQ(r2.ReadU8().value(), 0xAB);
  EXPECT_EQ(r2.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r2.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r2.ReadI64().value(), -42);
  EXPECT_EQ(r2.ReadI64().value(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r2.ReadDouble().value(), 3.141592653589793);
  EXPECT_EQ(r2.ReadString().value(), "factor");
  EXPECT_EQ(r2.ReadString().value(), "");
  EXPECT_TRUE(r2.ExpectEnd().ok());
}

TEST(SerdeTest, LittleEndianOnTheWire) {
  ByteWriter w;
  w.WriteU32(0x01020304u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[1], 0x03);
  EXPECT_EQ(w.bytes()[2], 0x02);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(SerdeTest, RawBytesRoundTrip) {
  const std::uint8_t payload[4] = {1, 2, 3, 4};
  ByteWriter w;
  w.WriteBytes(payload, sizeof(payload));
  ByteReader r(w.bytes());
  std::uint8_t out[4] = {0, 0, 0, 0};
  ASSERT_TRUE(r.ReadBytes(out, sizeof(out)).ok());
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[3], 4);
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(SerdeTest, TruncationFailsEveryReader) {
  ByteWriter w;
  w.WriteU64(7);
  // Chop one byte off; every multi-byte read past the end must fail with
  // kIoError instead of reading out of bounds.
  ByteReader r(w.bytes().data(), w.size() - 1);
  EXPECT_EQ(r.ReadU64().status().code(), StatusCode::kIoError);

  ByteReader empty(w.bytes().data(), 0);
  EXPECT_EQ(empty.ReadU8().status().code(), StatusCode::kIoError);
  EXPECT_EQ(empty.ReadU32().status().code(), StatusCode::kIoError);
  EXPECT_EQ(empty.ReadI64().status().code(), StatusCode::kIoError);
  EXPECT_EQ(empty.ReadDouble().status().code(), StatusCode::kIoError);
  EXPECT_EQ(empty.ReadString().status().code(), StatusCode::kIoError);
  std::uint8_t sink = 0;
  EXPECT_EQ(empty.ReadBytes(&sink, 1).code(), StatusCode::kIoError);
}

TEST(SerdeTest, StringLengthBeyondBufferIsRejected) {
  // A length prefix claiming more bytes than remain must fail before any
  // allocation, not over-read.
  ByteWriter w;
  w.WriteU64(1000);  // claims a 1000-byte string...
  w.WriteU8('x');    // ...but only one byte follows
  ByteReader r(w.bytes());
  EXPECT_EQ(r.ReadString().status().code(), StatusCode::kIoError);
}

TEST(SerdeTest, TrailingBytesAreRejected) {
  ByteWriter w;
  w.WriteU32(5);
  w.WriteU8(0xFF);  // one stray byte after the parsed prefix
  ByteReader r(w.bytes());
  ASSERT_TRUE(r.ReadU32().ok());
  EXPECT_EQ(r.ExpectEnd().code(), StatusCode::kIoError);
  ASSERT_TRUE(r.ReadU8().ok());
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(SerdeTest, WriterCrcTracksContent) {
  ByteWriter w;
  EXPECT_EQ(w.Crc(), 0u);
  w.WriteString("123456789");
  // The string is length-prefixed, so the CRC covers prefix + payload.
  EXPECT_EQ(w.Crc(), Crc32(w.bytes().data(), w.size()));
  const std::uint32_t before = w.Crc();
  w.WriteU8(0);
  EXPECT_NE(w.Crc(), before);
}

TEST(SerdeTest, OffsetAndRemainingTrackReads) {
  ByteWriter w;
  w.WriteU32(1);
  w.WriteU32(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.offset(), 0u);
  EXPECT_EQ(r.remaining(), 8u);
  ASSERT_TRUE(r.ReadU32().ok());
  EXPECT_EQ(r.offset(), 4u);
  EXPECT_EQ(r.remaining(), 4u);
}

// --- Wire-message codecs (dist/transport/wire.h) ----------------------------
//
// Property-style coverage of every WireMessage kind: encode -> decode ->
// encode must be byte-stable (the codecs are exact inverses), every strict
// prefix of an encoding must be rejected with a Status (truncation is never
// UB — the bytes arrive from another process), and frame-level corruption
// must be caught by the CRC trailer.

/// Encodes, decodes, re-encodes, and asserts byte-stability. The decoder
/// must also consume the buffer exactly (no trailing bytes, nothing short).
template <typename T, typename Encode, typename Decode>
void ExpectWireRoundTrip(const T& msg, const Encode& encode,
                         const Decode& decode) {
  ByteWriter first;
  encode(msg, &first);
  ByteReader reader(first.bytes());
  auto decoded = decode(&reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(reader.ExpectEnd().ok());
  ByteWriter second;
  encode(*decoded, &second);
  EXPECT_EQ(first.bytes(), second.bytes());
}

/// Every strict prefix of `bytes` must fail to decode — with a Status, not
/// UB (run under ASan/UBSan in CI, this is the no-overread proof).
template <typename Decode>
void ExpectEveryTruncationRejected(const std::vector<std::uint8_t>& bytes,
                                   const Decode& decode) {
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    ByteReader reader(bytes.data(), cut);
    auto decoded = decode(&reader);
    // Either a read ran off the shortened buffer, or the decoder finished
    // early without consuming what the full encoding contains.
    const bool rejected = !decoded.ok() || !reader.ExpectEnd().ok();
    EXPECT_TRUE(rejected) << "prefix of " << cut << " of " << bytes.size()
                          << " bytes decoded cleanly";
  }
}

BitMatrix TestMatrix(std::int64_t rows, std::int64_t cols,
                     std::uint64_t seed) {
  BitMatrix m(rows, cols);
  std::uint64_t state = seed;
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      m.Set(r, c, (state >> 62) & 1);
    }
  }
  return m;
}

FactorDelta TestFactorDelta() {
  FactorDelta msg;
  msg.mode = Mode::kTwo;
  msg.rows = 24;
  msg.mf_slot = 2;
  msg.ms_slot = 1;
  msg.cache_group_size = 7;
  msg.enable_caching = false;
  MatrixDelta full;
  full.slot = 2;
  full.generation = 41;
  full.full = true;
  full.dense = TestMatrix(12, 5, 3);
  full.rows = 12;
  full.cols = 5;
  msg.updates.push_back(std::move(full));
  MatrixDelta delta;
  delta.slot = 1;
  delta.generation = 42;
  delta.base_generation = 40;
  delta.full = false;
  delta.rows = 70;  // two BitWords per column
  delta.cols = 4;
  delta.columns = {0, 3};
  delta.column_bits = {{0x00000000000000FFull, 0x1Full},
                       {0xAAAAAAAAAAAAAAAAull, 0x2Aull}};
  msg.updates.push_back(std::move(delta));
  return msg;
}

StorePartitionRequest TestStoreRequest() {
  using dbtf::testing::RandomTensor;
  const SparseTensor t = RandomTensor(12, 10, 8, 0.3, 99);
  auto unfolding = PartitionedUnfolding::Build(t, Mode::kOne, 2);
  StorePartitionRequest msg;
  msg.mode = Mode::kOne;
  msg.index = 1;
  msg.shape = unfolding->shape();
  std::vector<Partition> parts = std::move(*unfolding).ReleasePartitions();
  msg.partition = std::move(parts[parts.size() > 1 ? 1 : 0]);
  return msg;
}

TEST(WireCodec, FactorDeltaRoundTripsByteStable) {
  ExpectWireRoundTrip(TestFactorDelta(), EncodeFactorDelta, DecodeFactorDelta);
}

TEST(WireCodec, FactorDeltaTruncationRejected) {
  ByteWriter w;
  EncodeFactorDelta(TestFactorDelta(), &w);
  ExpectEveryTruncationRejected(w.bytes(), DecodeFactorDelta);
}

TEST(WireCodec, RunUpdateColumnRoundTripsByteStable) {
  RunUpdateColumn msg;
  msg.mode = Mode::kThree;
  msg.column = 5;
  msg.rows = 3;
  msg.row_masks = {0x1ull, 0xFFFFull, 0x8000000000000001ull};
  ExpectWireRoundTrip(msg, EncodeRunUpdateColumn, DecodeRunUpdateColumn);
  ByteWriter w;
  EncodeRunUpdateColumn(msg, &w);
  ExpectEveryTruncationRejected(w.bytes(), DecodeRunUpdateColumn);
}

TEST(WireCodec, CollectErrorsRequestRoundTripsByteStable) {
  CollectErrorsRequest msg;
  msg.mode = Mode::kTwo;
  msg.rows = 17;
  msg.want_stats = true;
  ExpectWireRoundTrip(msg, EncodeCollectErrorsRequest,
                      DecodeCollectErrorsRequest);
  ByteWriter w;
  EncodeCollectErrorsRequest(msg, &w);
  ExpectEveryTruncationRejected(w.bytes(), DecodeCollectErrorsRequest);
}

TEST(WireCodec, CollectErrorsResponseRoundTripsByteStable) {
  CollectErrorsResponse msg;
  msg.totals0 = {0, 5, 123456789};
  msg.totals1 = {9, 0, 42};
  msg.wire_bytes = 4096;
  msg.cache_entries = 17;
  msg.cache_bytes = 2048;
  ExpectWireRoundTrip(msg, EncodeCollectErrorsResponse,
                      DecodeCollectErrorsResponse);
  ByteWriter w;
  EncodeCollectErrorsResponse(msg, &w);
  ExpectEveryTruncationRejected(w.bytes(), DecodeCollectErrorsResponse);
}

TEST(WireCodec, StorePartitionRequestRoundTripsByteStable) {
  const StorePartitionRequest msg = TestStoreRequest();
  ExpectWireRoundTrip(msg, EncodeStorePartitionRequest,
                      DecodeStorePartitionRequest);
  ByteWriter w;
  EncodeStorePartitionRequest(msg, &w);
  ExpectEveryTruncationRejected(w.bytes(), DecodeStorePartitionRequest);
}

TEST(WireCodec, ListPartitionsRoundTripsByteStable) {
  {
    ByteWriter first;
    EncodeListPartitionsRequest(Mode::kThree, &first);
    ByteReader reader(first.bytes());
    auto mode = DecodeListPartitionsRequest(&reader);
    ASSERT_TRUE(mode.ok());
    ASSERT_TRUE(reader.ExpectEnd().ok());
    ByteWriter second;
    EncodeListPartitionsRequest(*mode, &second);
    EXPECT_EQ(first.bytes(), second.bytes());
    ExpectEveryTruncationRejected(first.bytes(), DecodeListPartitionsRequest);
  }
  {
    const std::vector<std::int64_t> indexes = {0, 7, 3};
    ByteWriter first;
    EncodeListPartitionsResponse(indexes, &first);
    ByteReader reader(first.bytes());
    auto decoded = DecodeListPartitionsResponse(&reader);
    ASSERT_TRUE(decoded.ok());
    ASSERT_TRUE(reader.ExpectEnd().ok());
    EXPECT_EQ(*decoded, indexes);
    ExpectEveryTruncationRejected(first.bytes(), DecodeListPartitionsResponse);
  }
}

TEST(WireCodec, ReplyRoundTripsByteStable) {
  WireReply reply;
  reply.status = Status::FailedPrecondition("stale base generation");
  reply.compute_seconds = 0.125;
  reply.body = {1, 2, 3, 0xFF, 0};
  ExpectWireRoundTrip(reply, EncodeReply, DecodeReply);
  ByteWriter w;
  EncodeReply(reply, &w);
  ExpectEveryTruncationRejected(w.bytes(), DecodeReply);
}

TEST(WireCodec, InvalidModeIsRejectedNotUb) {
  ByteWriter w;
  w.WriteU8(9);  // Mode is 1..3 on the wire
  ByteReader reader(w.bytes());
  EXPECT_FALSE(DecodeListPartitionsRequest(&reader).ok());
}

TEST(WireFrameTest, FrameRoundTripsAndRejectsDamage) {
  ByteWriter payload;
  EncodeRunUpdateColumn(
      RunUpdateColumn{Mode::kOne, 2, {0xF0ull, 0x0Full}, 2}, &payload);
  const std::vector<std::uint8_t> frame =
      EncodeFrame(WireKind::kRunUpdateColumn, payload);
  ASSERT_GE(frame.size(), kFrameHeaderBytes + kFrameCrcBytes);

  auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, WireKind::kRunUpdateColumn);
  EXPECT_EQ(decoded->payload, payload.bytes());

  // Every single-bit flip anywhere in the frame is rejected: header damage
  // fails the magic/version/kind/length checks, payload damage fails the
  // CRC, CRC damage fails the comparison.
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    std::vector<std::uint8_t> damaged = frame;
    damaged[byte] ^= 0x40;
    auto result = DecodeFrame(damaged);
    EXPECT_FALSE(result.ok()) << "bit flip in byte " << byte << " accepted";
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kIoError);
    }
  }

  // Truncation at every length is a clean kIoError, never an overread.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    std::vector<std::uint8_t> short_frame(frame.begin(),
                                          frame.begin() + cut);
    EXPECT_FALSE(DecodeFrame(short_frame).ok());
  }
}

TEST(WireFrameTest, ShutdownFrameIsEmptyPayload) {
  ByteWriter empty;
  const std::vector<std::uint8_t> frame =
      EncodeFrame(WireKind::kShutdown, empty);
  auto decoded = DecodeFrame(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, WireKind::kShutdown);
  EXPECT_TRUE(decoded->payload.empty());
}

/// A padding-bit violation in a dense matrix payload is data corruption the
/// CRC cannot see (it was encoded that way); the decoder must reject it
/// rather than import a matrix whose popcounts lie.
TEST(WireCodec, PaddingBitViolationRejected) {
  MatrixDelta d;
  d.slot = 0;
  d.generation = 1;
  d.full = true;
  d.dense = TestMatrix(3, 5, 11);  // 5 cols -> 59 padding bits per word
  d.rows = 3;
  d.cols = 5;
  FactorDelta msg;
  msg.mode = Mode::kOne;
  msg.rows = 3;
  msg.updates.push_back(std::move(d));
  ByteWriter w;
  EncodeFactorDelta(msg, &w);
  // The matrix words are the trailing cols-bit groups; flip a high bit in
  // the last row word (belongs to padding, not to any column).
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes[bytes.size() - 1] ^= 0x80;  // top byte of the final little-endian word
  ByteReader reader(bytes);
  auto decoded = DecodeFactorDelta(&reader);
  EXPECT_FALSE(decoded.ok());
}

}  // namespace
}  // namespace dbtf
