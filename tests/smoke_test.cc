// End-to-end smoke tests: each major subsystem factorizes a small planted
// tensor and the pieces agree with each other.

#include <gtest/gtest.h>

#include "bcpals/bcp_als.h"
#include "dbtf/dbtf.h"
#include "eval/metrics.h"
#include "generator/generator.h"
#include "tensor/boolean_ops.h"
#include "walknmerge/walk_n_merge.h"

namespace dbtf {
namespace {

TEST(Smoke, DbtfRecoversNoiseFreePlantedTensor) {
  PlantedSpec spec;
  spec.dim_i = 40;
  spec.dim_j = 36;
  spec.dim_k = 32;
  spec.rank = 4;
  spec.factor_density = 0.2;
  spec.seed = 7;
  auto planted = GeneratePlanted(spec);
  ASSERT_TRUE(planted.ok()) << planted.status().ToString();

  DbtfConfig config;
  config.rank = 4;
  config.max_iterations = 10;
  config.num_initial_sets = 4;
  config.num_partitions = 4;
  config.seed = 13;
  config.cluster.num_machines = 4;
  config.cluster.num_threads = 2;
  auto result = Dbtf::Factorize(planted->tensor, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The greedy error trace must be non-increasing.
  for (std::size_t t = 1; t < result->iteration_errors.size(); ++t) {
    EXPECT_LE(result->iteration_errors[t], result->iteration_errors[t - 1]);
  }

  // The driver-side error must agree with the sparse evaluator.
  auto check = ReconstructionError(planted->tensor, result->a, result->b,
                                   result->c);
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(*check, result->final_error);

  // Noise-free planted tensors at tiny rank should factorize near-exactly.
  auto rel = RelativeError(planted->tensor, result->a, result->b, result->c);
  ASSERT_TRUE(rel.ok());
  EXPECT_LT(*rel, 0.2) << "relative error too high";
}

TEST(Smoke, BcpAlsRunsAndAgreesWithEvaluator) {
  PlantedSpec spec;
  spec.dim_i = 24;
  spec.dim_j = 24;
  spec.dim_k = 24;
  spec.rank = 3;
  spec.factor_density = 0.2;
  spec.seed = 3;
  auto planted = GeneratePlanted(spec);
  ASSERT_TRUE(planted.ok());

  BcpAlsConfig config;
  config.rank = 3;
  config.max_iterations = 5;
  auto result = BcpAls(planted->tensor, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto check = ReconstructionError(planted->tensor, result->a, result->b,
                                   result->c);
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(*check, result->final_error);
}

TEST(Smoke, WalkNMergeFindsAPlantedDenseBlock) {
  auto tensor = SparseTensor::Create(32, 32, 32);
  ASSERT_TRUE(tensor.ok());
  // One dense 6x6x6 block.
  for (int i = 4; i < 10; ++i) {
    for (int j = 8; j < 14; ++j) {
      for (int k = 2; k < 8; ++k) {
        ASSERT_TRUE(tensor->Add(i, j, k).ok());
      }
    }
  }
  tensor->SortAndDedup();

  WalkNMergeConfig config;
  config.seed = 5;
  config.density_threshold = 0.9;
  auto result = WalkNMerge(*tensor, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->num_blocks, 1);
  EXPECT_EQ(result->final_error, 0) << "the single dense block is exact";
}

}  // namespace
}  // namespace dbtf
