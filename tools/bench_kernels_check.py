#!/usr/bin/env python3
"""CI gate over bench_micro_kernels --json (the BENCH_kernels.json schema).

Two checks, both over throughput *ratios* (GiB/s varies wildly across CI
runners; speedup-vs-portable measured within one run on one machine is the
stable signal):

  dispatch-wins   the auto-dispatched backend must be at least as fast as
                  the portable oracle on the counting hot paths (popcount,
                  xor_popcount), within --tolerance. A dispatch that loses
                  to scalar code means the SIMD backend or the CPUID
                  resolution is broken.
  no-regression   against a committed baseline (--baseline), each backend's
                  speedup_vs_portable may not fall below baseline *
                  --regression-factor. Only backends present in BOTH files
                  are compared, so a runner without AVX-512 skips those
                  rows instead of failing.

Exit status: 0 = pass, 1 = gate failure, 2 = bad invocation/schema.

Usage:
  bench/bench_micro_kernels --json > current.json
  tools/bench_kernels_check.py --current current.json \
      --baseline BENCH_kernels.json
"""

import argparse
import json
import sys

# Ops where losing to portable indicates a broken backend. The write ops are
# memory-bound and the predicates depend on short-circuit position, so only
# the counting kernels gate the dispatch.
GATED_OPS = ("popcount", "xor_popcount")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_kernels_check: cannot read {path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "dbtf-bench-kernels-v1":
        print(f"bench_kernels_check: {path}: unexpected schema "
              f"{doc.get('schema')!r}", file=sys.stderr)
        sys.exit(2)
    for key in ("dispatched", "backends", "speedup_vs_portable"):
        if key not in doc:
            print(f"bench_kernels_check: {path}: missing {key!r}",
                  file=sys.stderr)
            sys.exit(2)
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="fresh bench_micro_kernels --json output")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_kernels.json to compare against")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="slack on dispatched >= portable (default 0.15)")
    parser.add_argument("--regression-factor", type=float, default=0.5,
                        help="minimum fraction of the baseline speedup that "
                             "still passes (default 0.5)")
    args = parser.parse_args()

    current = load(args.current)
    failures = []

    dispatched = current["dispatched"]
    backends = current["backends"]
    if dispatched not in backends:
        print(f"bench_kernels_check: dispatched backend {dispatched!r} "
              f"not measured", file=sys.stderr)
        sys.exit(2)
    if "portable" not in backends:
        print("bench_kernels_check: portable backend missing",
              file=sys.stderr)
        sys.exit(2)

    # dispatch-wins
    for op in GATED_OPS:
        fast = backends[dispatched].get(op)
        slow = backends["portable"].get(op)
        if fast is None or slow is None:
            failures.append(f"op {op!r} missing from measurements")
            continue
        floor = slow * (1.0 - args.tolerance)
        if fast < floor:
            failures.append(
                f"dispatch-wins: {dispatched}.{op} = {fast:.3f} GiB/s is "
                f"slower than portable {slow:.3f} (floor {floor:.3f})")
        else:
            print(f"ok dispatch-wins: {dispatched}.{op} {fast:.3f} GiB/s "
                  f">= portable {slow:.3f}")

    # no-regression
    if args.baseline:
        baseline = load(args.baseline)
        base_ratios = baseline["speedup_vs_portable"]
        cur_ratios = current["speedup_vs_portable"]
        shared = sorted(set(base_ratios) & set(cur_ratios))
        skipped = sorted(set(base_ratios) - set(cur_ratios))
        if skipped:
            print(f"note: baseline backends not measured here "
                  f"(runner lacks them): {', '.join(skipped)}")
        for backend in shared:
            for op, base in sorted(base_ratios[backend].items()):
                cur = cur_ratios[backend].get(op)
                if cur is None:
                    failures.append(
                        f"no-regression: {backend}.{op} missing from current")
                    continue
                floor = base * args.regression_factor
                if cur < floor:
                    failures.append(
                        f"no-regression: {backend}.{op} speedup {cur:.3f}x "
                        f"fell below {floor:.3f}x "
                        f"(baseline {base:.3f}x * {args.regression_factor})")
        if not any(f.startswith("no-regression") for f in failures):
            print(f"ok no-regression: {len(shared)} backend(s) vs baseline")

    if failures:
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    print("bench_kernels_check: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
