// Fixture: two discarded Status results — a bare call statement and a
// member-call chain — among correctly consumed ones. The discarded-status
// rule must flag exactly the two drops.
#include "common/status.h"

namespace dbtf {

Status Flush();

class Store {
 public:
  Status Persist();
};

Status Run(Store& store) {
  Flush();                    // BAD: Status discarded
  store.Persist();            // BAD: Status discarded through a member call
  DBTF_RETURN_IF_ERROR(Flush());
  Status persisted = store.Persist();
  if (!persisted.ok()) return persisted;
  DBTF_IGNORE_ERROR(Flush());
  (void)store.Persist();
  return Status::OK();
}

}  // namespace dbtf
