// Fixture: BuildCheckpoint writes and RestoreFromCheckpoint reads every
// CheckpointState field, so the ckpt-coverage rule stays quiet.
#include "ckpt/checkpoint.h"

namespace dbtf {

class Session {
 public:
  CheckpointState BuildCheckpoint() const;
  void RestoreFromCheckpoint(const CheckpointState& ck);

 private:
  std::uint64_t fingerprint_ = 0;
  std::int64_t iteration_ = 0;
  double best_error_ = 0.0;
  FactorShadowSnapshot shadow_;
};

CheckpointState Session::BuildCheckpoint() const {
  CheckpointState ck;
  ck.config_fingerprint = fingerprint_;
  ck.iteration = iteration_;
  ck.best_error = best_error_;
  ck.shadow.initialized = shadow_.initialized;
  ck.shadow.generation = shadow_.generation;
  ck.shadow.content = shadow_.content;
  return ck;
}

void Session::RestoreFromCheckpoint(const CheckpointState& ck) {
  fingerprint_ = ck.config_fingerprint;
  iteration_ = ck.iteration;
  best_error_ = ck.best_error;
  shadow_.initialized = ck.shadow.initialized;
  shadow_.generation = ck.shadow.generation;
  shadow_.content = ck.shadow.content;
}

}  // namespace dbtf
