// Fixture: every Status-returning call is consumed — checked, propagated,
// or dropped explicitly — so discarded-status stays quiet.
#include "common/status.h"

namespace dbtf {

Status Load();
Status Store();

Status Run() {
  Status loaded = Load();
  if (!loaded.ok()) return loaded;
  DBTF_RETURN_IF_ERROR(Store());
  DBTF_IGNORE_ERROR(Store());  // best-effort flush, drop deliberately
  (void)Load();
  return Status::OK();
}

}  // namespace dbtf
