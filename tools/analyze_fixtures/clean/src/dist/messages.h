// Fixture: one wire message whose codec pair covers every field.
#ifndef FIXTURE_DIST_MESSAGES_H_
#define FIXTURE_DIST_MESSAGES_H_

#include <cstdint>
#include <vector>

namespace dbtf {

struct FactorDelta {
  int mode = 0;
  std::int64_t rows = 0;
  std::vector<std::uint64_t> updates;
};

}  // namespace dbtf

#endif  // FIXTURE_DIST_MESSAGES_H_
