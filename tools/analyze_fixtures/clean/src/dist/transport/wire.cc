// Fixture: encoder and decoder both reference every FactorDelta field.
#include "dist/messages.h"

namespace dbtf {

std::vector<std::uint8_t> EncodeFactorDelta(const FactorDelta& msg) {
  std::vector<std::uint8_t> bytes;
  Append(&bytes, msg.mode);
  Append(&bytes, msg.rows);
  Append(&bytes, msg.updates);
  return bytes;
}

bool DecodeFactorDelta(const std::vector<std::uint8_t>& bytes,
                       FactorDelta* msg) {
  Cursor r(bytes);
  msg->mode = r.TakeInt();
  msg->rows = r.TakeI64();
  msg->updates = r.TakeWords();
  return r.AtEnd();
}

}  // namespace dbtf
