// Fixture: locks are always taken in the same order (a before b) and every
// guarded member is annotated, so lock-order and guarded-by stay quiet.
#ifndef FIXTURE_DIST_WORKER_H_
#define FIXTURE_DIST_WORKER_H_

#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dbtf {

class Worker {
 public:
  void Step() {
    MutexLock outer(mu_a_);
    MutexLock inner(mu_b_);
    count_ += 1;
  }

  void Record(int value) {
    MutexLock lock(mu_b_);
    values_.push_back(value);
  }

 private:
  Mutex mu_a_;
  Mutex mu_b_;
  int count_ DBTF_GUARDED_BY(mu_b_) = 0;
  std::vector<int> values_ DBTF_GUARDED_BY(mu_b_);
};

}  // namespace dbtf

#endif  // FIXTURE_DIST_WORKER_H_
