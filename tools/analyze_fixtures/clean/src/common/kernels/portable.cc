// Fixture: the kernel layer itself. Exactly the idioms kernel-confinement
// bans elsewhere — scalar std::popcount and hand-rolled word loops — are
// legal here, because src/common/kernels/ is the one place they live.

#include <bit>
#include <cstddef>
#include <cstdint>

namespace dbtf {

using BitWord = std::uint64_t;

std::int64_t PopcountWords(const BitWord* w, std::size_t nw) {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < nw; ++i) total += std::popcount(w[i]);
  return total;
}

void OrWords(BitWord* d, const BitWord* s, std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) d[i] |= s[i];
}

}  // namespace dbtf
