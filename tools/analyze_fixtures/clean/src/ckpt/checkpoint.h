// Fixture: a miniature checkpoint schema that every consumer covers — the
// ckpt-coverage rule must pass this tree with zero findings.
#ifndef FIXTURE_CKPT_CHECKPOINT_H_
#define FIXTURE_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <vector>

namespace dbtf {

struct FactorShadowSnapshot {
  bool initialized = false;
  std::int64_t generation = 0;
  std::vector<std::uint64_t> content;
};

struct CheckpointState {
  std::uint64_t config_fingerprint = 0;
  std::int64_t iteration = 0;
  double best_error = 0.0;
  FactorShadowSnapshot shadow;
};

}  // namespace dbtf

#endif  // FIXTURE_CKPT_CHECKPOINT_H_
