// Fixture: one Serialize*/Parse* pair covering the whole mini schema.
#include "ckpt/checkpoint.h"

namespace dbtf {
namespace ckpt_format {

std::vector<std::uint8_t> SerializeRun(const CheckpointState& state) {
  std::vector<std::uint8_t> bytes;
  Append(&bytes, state.config_fingerprint);
  Append(&bytes, state.iteration);
  Append(&bytes, state.best_error);
  Append(&bytes, state.shadow.initialized);
  Append(&bytes, state.shadow.generation);
  Append(&bytes, state.shadow.content);
  return bytes;
}

bool ParseRun(const std::vector<std::uint8_t>& bytes, CheckpointState* state) {
  Cursor r(bytes);
  state->config_fingerprint = r.TakeU64();
  state->iteration = r.TakeI64();
  state->best_error = r.TakeDouble();
  state->shadow.initialized = r.TakeBool();
  state->shadow.generation = r.TakeI64();
  state->shadow.content = r.TakeWords();
  return r.AtEnd();
}

}  // namespace ckpt_format
}  // namespace dbtf
