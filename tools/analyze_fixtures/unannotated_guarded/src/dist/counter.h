// Fixture: total_ is mutated under MutexLock but carries no DBTF_GUARDED_BY
// annotation; samples_ shows the annotated (clean) form. The guarded-by
// rule must flag exactly total_.
#ifndef FIXTURE_DIST_COUNTER_H_
#define FIXTURE_DIST_COUNTER_H_

#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dbtf {

class Counter {
 public:
  void Add(int value) {
    MutexLock lock(mu_);
    total_ += value;
    samples_.push_back(value);
  }

 private:
  Mutex mu_;
  int total_ = 0;
  std::vector<int> samples_ DBTF_GUARDED_BY(mu_);
};

}  // namespace dbtf

#endif  // FIXTURE_DIST_COUNTER_H_
