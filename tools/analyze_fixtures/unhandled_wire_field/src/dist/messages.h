// Fixture: FactorDelta::rows is encoded but never decoded, and the second
// message has no codecs at all. The wire-coverage rule must flag both.
#ifndef FIXTURE_DIST_MESSAGES_H_
#define FIXTURE_DIST_MESSAGES_H_

#include <cstdint>
#include <vector>

namespace dbtf {

struct FactorDelta {
  int mode = 0;
  std::int64_t rows = 0;
  std::vector<std::uint64_t> updates;
};

struct ShutdownRequest {
  int reason = 0;
};

}  // namespace dbtf

#endif  // FIXTURE_DIST_MESSAGES_H_
