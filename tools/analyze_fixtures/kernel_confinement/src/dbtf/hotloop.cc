// Fixture: word-level Boolean arithmetic hand-rolled outside the kernel
// layer. Both idioms must trip kernel-confinement; the suppressed loop at
// the bottom must not.

#include <bit>
#include <cstddef>
#include <cstdint>

namespace dbtf {

using BitWord = std::uint64_t;

std::int64_t RowError(const BitWord* x, const BitWord* y, std::size_t nw) {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < nw; ++i) {
    total += std::popcount(x[i] ^ y[i]);
  }
  return total;
}

void OrInto(BitWord* dst, const BitWord* src, std::size_t nw) {
  for (std::size_t i = 0; i < nw; ++i) dst[i] |= src[i];
}

std::uint64_t SumWords(const BitWord* w, std::size_t nw) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < nw; ++i) {
    total += w[i] & 0xFF;  // analyze-ignore(kernel-confinement): fixture
  }
  return total;
}

}  // namespace dbtf
