// Fixture: the session covers every field — the gap is in the codecs.
#include "ckpt/checkpoint.h"

namespace dbtf {

class Session {
 public:
  CheckpointState BuildCheckpoint() const;
  void RestoreFromCheckpoint(const CheckpointState& ck);

 private:
  std::uint64_t fingerprint_ = 0;
  std::int64_t iteration_ = 0;
  double best_error_ = 0.0;
};

CheckpointState Session::BuildCheckpoint() const {
  CheckpointState ck;
  ck.config_fingerprint = fingerprint_;
  ck.iteration = iteration_;
  ck.best_error = best_error_;
  return ck;
}

void Session::RestoreFromCheckpoint(const CheckpointState& ck) {
  fingerprint_ = ck.config_fingerprint;
  iteration_ = ck.iteration;
  best_error_ = ck.best_error;
}

}  // namespace dbtf
