// Fixture: the codec pair forgot best_error.
#include "ckpt/checkpoint.h"

namespace dbtf {
namespace ckpt_format {

std::vector<std::uint8_t> SerializeRun(const CheckpointState& state) {
  std::vector<std::uint8_t> bytes;
  Append(&bytes, state.config_fingerprint);
  Append(&bytes, state.iteration);
  return bytes;
}

bool ParseRun(const std::vector<std::uint8_t>& bytes, CheckpointState* state) {
  Cursor r(bytes);
  state->config_fingerprint = r.TakeU64();
  state->iteration = r.TakeI64();
  return r.AtEnd();
}

}  // namespace ckpt_format
}  // namespace dbtf
