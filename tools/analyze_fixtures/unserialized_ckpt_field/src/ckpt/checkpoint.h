// Fixture: CheckpointState::best_error is captured and restored by the
// session but never serialized or parsed by a blob codec — a snapshot would
// silently restore it to its default. The ckpt-coverage rule must flag the
// field against both the Serialize* and the Parse* consumer.
#ifndef FIXTURE_CKPT_CHECKPOINT_H_
#define FIXTURE_CKPT_CHECKPOINT_H_

#include <cstdint>

namespace dbtf {

struct CheckpointState {
  std::uint64_t config_fingerprint = 0;
  std::int64_t iteration = 0;
  double best_error = 0.0;
};

}  // namespace dbtf

#endif  // FIXTURE_CKPT_CHECKPOINT_H_
