// Fixture: Step acquires mu_a_ then mu_b_; Rebalance acquires mu_b_ then
// calls Recount, which takes mu_a_ — an a->b->a cycle through the call
// graph. The lock-order rule must report the cycle with both edges.
#ifndef FIXTURE_DIST_WORKER_H_
#define FIXTURE_DIST_WORKER_H_

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dbtf {

class Worker {
 public:
  void Step() {
    MutexLock outer(mu_a_);
    MutexLock inner(mu_b_);
    steps_ += 1;
  }

  void Rebalance() {
    MutexLock lock(mu_b_);
    Recount();
  }

 private:
  void Recount() {
    MutexLock lock(mu_a_);
    recounts_ += 1;
  }

  Mutex mu_a_;
  Mutex mu_b_;
  int steps_ DBTF_GUARDED_BY(mu_b_) = 0;
  int recounts_ DBTF_GUARDED_BY(mu_a_) = 0;
};

}  // namespace dbtf

#endif  // FIXTURE_DIST_WORKER_H_
