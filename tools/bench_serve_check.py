#!/usr/bin/env python3
"""CI gate over bench_serve --json (the BENCH_serve.json schema).

Three checks:

  schema          the report must carry schema dbtf-bench-serve-v1 with the
                  workload header (skew/seed/dims/rank/mix) and at least one
                  run; each run needs throughput, per-kind latency rows, the
                  answer digest, and the generation triple it served.
  fresh-measure   every run must look *measured*, not fabricated or stale:
                  positive ops/wall/qps, per-kind counts summing to the
                  run's op count, and — when several transports ran — one
                  identical answer digest across all of them (the transport
                  moves bytes; it must not change a single answer byte).
  no-regression   against a committed baseline (--baseline), each
                  transport's qps may not fall below baseline *
                  --regression-factor. Ratios are against the same
                  transport only, and transports missing from the current
                  report are skipped, not failed (a CI runner may only
                  exercise inproc). Latencies are reported, not gated:
                  wall-clock percentiles on shared runners are too noisy
                  to fail a build on.

Exit status: 0 = pass, 1 = gate failure, 2 = bad invocation/schema.

Usage:
  DBTF_WORKER_BIN=build/tools/dbtf-worker \
      build/bench/bench_serve --json current.json
  tools/bench_serve_check.py --current current.json \
      --baseline BENCH_serve.json
"""

import argparse
import json
import sys

KINDS = ("membership", "fiber", "top", "update")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_serve_check: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "dbtf-bench-serve-v1":
        print(f"bench_serve_check: {path}: unexpected schema "
              f"{doc.get('schema')!r}", file=sys.stderr)
        sys.exit(2)
    for key in ("skew", "seed", "dims", "rank", "mix", "runs"):
        if key not in doc:
            print(f"bench_serve_check: {path}: missing {key!r}",
                  file=sys.stderr)
            sys.exit(2)
    if not doc["runs"]:
        print(f"bench_serve_check: {path}: no runs recorded", file=sys.stderr)
        sys.exit(2)
    for run in doc["runs"]:
        for key in ("transport", "ops", "wall_seconds", "qps", "digest",
                    "generations", "kinds"):
            if key not in run:
                print(f"bench_serve_check: {path}: run missing {key!r}",
                      file=sys.stderr)
                sys.exit(2)
        for row in run["kinds"]:
            for key in ("kind", "count", "p50_us", "p95_us", "p99_us"):
                if key not in row:
                    print(f"bench_serve_check: {path}: kind row missing "
                          f"{key!r}", file=sys.stderr)
                    sys.exit(2)
    return doc


def check_fresh(doc):
    failures = []
    digests = []
    for run in doc["runs"]:
        t = run["transport"]
        if run["ops"] <= 0 or run["wall_seconds"] <= 0 or run["qps"] <= 0:
            failures.append(f"fresh-measure: {t} run was not measured "
                            f"(ops={run['ops']}, wall={run['wall_seconds']}, "
                            f"qps={run['qps']})")
        counted = sum(row["count"] for row in run["kinds"])
        if counted != run["ops"]:
            failures.append(f"fresh-measure: {t} kind counts sum to "
                            f"{counted}, not ops={run['ops']}")
        unknown = [row["kind"] for row in run["kinds"]
                   if row["kind"] not in KINDS]
        if unknown:
            failures.append(f"fresh-measure: {t} has unknown kinds {unknown}")
        if len(run["generations"]) != 3:
            failures.append(f"fresh-measure: {t} generation triple has "
                            f"{len(run['generations'])} entries")
        if not run["digest"]:
            failures.append(f"fresh-measure: {t} has an empty answer digest")
        digests.append((t, run["digest"]))
    if len({d for _, d in digests}) > 1:
        failures.append("fresh-measure: answer digests differ across "
                        "transports: " +
                        ", ".join(f"{t}={d}" for t, d in digests))
    if not failures:
        transports = ", ".join(t for t, _ in digests)
        print(f"ok fresh-measure: {transports} "
              f"({doc['runs'][0]['ops']} ops each, identical digests)")
    return failures


def check_regression(current, baseline, factor):
    failures = []
    base_qps = {run["transport"]: run["qps"] for run in baseline["runs"]}
    cur_qps = {run["transport"]: run["qps"] for run in current["runs"]}
    shared = sorted(set(base_qps) & set(cur_qps))
    skipped = sorted(set(base_qps) - set(cur_qps))
    if skipped:
        print(f"note: baseline transports not measured here: "
              f"{', '.join(skipped)}")
    for transport in shared:
        floor = base_qps[transport] * factor
        if cur_qps[transport] < floor:
            failures.append(
                f"no-regression: {transport} qps {cur_qps[transport]:.0f} "
                f"fell below {floor:.0f} "
                f"(baseline {base_qps[transport]:.0f} * {factor})")
        else:
            print(f"ok no-regression: {transport} {cur_qps[transport]:.0f} "
                  f"qps >= floor {floor:.0f}")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="fresh bench_serve --json output")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_serve.json to compare against")
    parser.add_argument("--regression-factor", type=float, default=0.5,
                        help="minimum fraction of the baseline qps that "
                             "still passes (default 0.5)")
    args = parser.parse_args()

    current = load(args.current)
    failures = check_fresh(current)
    if args.baseline:
        baseline = load(args.baseline)
        failures += check_regression(current, baseline,
                                     args.regression_factor)

    for run in current["runs"]:
        p99 = {row["kind"]: row["p99_us"] for row in run["kinds"]}
        summary = " ".join(f"{kind} p99={p99[kind]:.1f}us"
                           for kind in KINDS if kind in p99)
        print(f"report {run['transport']}: {run['qps']:.0f} qps, {summary}")

    if failures:
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    print("bench_serve_check: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
