// The `dbtf` command-line tool: generate tensors, factorize them with any of
// the three algorithms, evaluate factor files, and inspect tensors.
// Run `dbtf help` for usage.

#include "cli/cli.h"

int main(int argc, char** argv) { return dbtf::cli::RunCli(argc, argv); }
