#!/usr/bin/env python3
"""Self-test for dbtf_lint.py: every violation class trips, clean code passes."""

from __future__ import annotations

import sys
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import dbtf_lint

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def rules_in(diagnostics: list[str]) -> set[str]:
    return {d.split("[", 1)[1].split("]", 1)[0] for d in diagnostics}


class FixtureTest(unittest.TestCase):
    def lint(self, case: str) -> list[str]:
        root = FIXTURES / case
        self.assertTrue((root / "src").is_dir(), f"missing fixture {case}")
        return dbtf_lint.lint_tree(root)

    def test_worker_include_fixture_trips(self):
        diagnostics = self.lint("worker_include")
        self.assertEqual(rules_in(diagnostics), {"worker-include"})
        self.assertEqual(len(diagnostics), 1)
        self.assertIn("src/dbtf/session.h:6:", diagnostics[0])

    def test_naked_mutex_fixture_trips(self):
        diagnostics = self.lint("naked_mutex")
        self.assertEqual(rules_in(diagnostics), {"naked-mutex"})
        self.assertIn("mu_", diagnostics[0])

    def test_thread_construction_fixture_trips(self):
        diagnostics = self.lint("thread_construction")
        self.assertEqual(rules_in(diagnostics), {"thread-construction"})
        self.assertEqual(len(diagnostics), 1)

    def test_comm_stats_mutation_fixture_trips(self):
        diagnostics = self.lint("comm_stats_mutation")
        self.assertEqual(rules_in(diagnostics), {"comm-stats-mutation"})
        # Every Record* lane mutation and the Reset line are flagged.
        self.assertEqual(len(diagnostics), 3)

    def test_fault_handling_fixture_trips(self):
        diagnostics = self.lint("fault_handling")
        self.assertEqual(rules_in(diagnostics), {"fault-handling"})
        # Two sleeps plus one ad-hoc Status::Unavailable construction.
        self.assertEqual(len(diagnostics), 3)

    def test_filesystem_write_fixture_trips(self):
        diagnostics = self.lint("filesystem_write")
        self.assertEqual(rules_in(diagnostics), {"filesystem-write"})
        # One ofstream, one fopen, and one publishing rename.
        self.assertEqual(len(diagnostics), 3)

    def test_recovery_stats_mutation_fixture_trips(self):
        diagnostics = self.lint("recovery_stats_mutation")
        self.assertEqual(rules_in(diagnostics), {"recovery-stats-mutation"})
        self.assertEqual(len(diagnostics), 2)

    def test_transport_syscalls_fixture_trips(self):
        diagnostics = self.lint("transport_syscalls")
        self.assertEqual(rules_in(diagnostics), {"transport-syscalls"})
        # socket, bind, listen, fork, execv, kill, waitpid — one finding per
        # line; the "socket (" usage string and std::bind stay clean.
        self.assertEqual(len(diagnostics), 7)

    def test_async_seam_fixture_trips(self):
        diagnostics = self.lint("async_seam")
        self.assertEqual(rules_in(diagnostics), {"async-seam"})
        # std::future return, std::async call, std::promise member, and a
        # std::condition_variable member — one finding per line.
        self.assertEqual(len(diagnostics), 4)

    def test_clean_fixture_passes(self):
        self.assertEqual(self.lint("clean"), [])

    def test_repo_tree_is_clean(self):
        repo = Path(__file__).resolve().parent.parent
        self.assertEqual(dbtf_lint.lint_tree(repo), [])

    def test_cli_exit_codes(self):
        self.assertEqual(
            dbtf_lint.main(["--root", str(FIXTURES / "clean")]), 0)
        self.assertEqual(
            dbtf_lint.main(["--root", str(FIXTURES / "worker_include")]), 1)
        self.assertEqual(
            dbtf_lint.main(["--root", str(FIXTURES)]), 2)  # no src/ here


if __name__ == "__main__":
    unittest.main()
