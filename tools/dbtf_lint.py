#!/usr/bin/env python3
"""DBTF project linter: structural rules the compiler cannot check.

Scans src/**/*.{h,cc} and enforces the layering and locking discipline of
the driver/worker runtime (see DESIGN.md, "Correctness tooling"):

  worker-include      dist/worker.h may be included only inside src/dist/
                      and by src/dbtf/engine.cc (the routing call sites).
                      Driver code must go through Cluster routing and the
                      provisioning seam (dist/provision.h).
  naked-mutex         every mutex member (std::mutex or dbtf::Mutex, named
                      with a trailing underscore) must guard something: the
                      declaring file must annotate at least one member with
                      DBTF_GUARDED_BY(<that mutex>). A mutex protecting
                      nothing is either dead or hiding unguarded state.
  thread-construction std::thread objects are created only by the pool
                      (src/dist/thread_pool.{h,cc}). Reading static members
                      such as std::thread::hardware_concurrency() is fine.
  comm-stats-mutation the CommStats ledger is mutated (Record*/Reset) only
                      by Cluster's charging layer (src/dist/cluster.cc), so
                      every routed message is charged exactly once.
  fault-handling      failure is expressed only through dist/fault.h: no
                      wall-clock sleeps anywhere in src/dist/ or src/dbtf/
                      (faults cost virtual time, never real time), and
                      Status::Unavailable is constructed only by the fault
                      seam (dist/fault.cc) and the retrying router
                      (dist/cluster.cc) — ad-hoc failure flags elsewhere
                      would bypass the retry policy and the recovery ledger.
  recovery-stats-mutation
                      the RecoveryLedger is mutated (Record*) only by
                      Cluster's charging layer (src/dist/cluster.cc), so
                      every retry/re-provision is counted exactly once.
  filesystem-write    durable state leaves the process only through the two
                      sanctioned seams: the checkpoint store (src/ckpt/) and
                      the text tensor/matrix codecs (src/tensor/io.cc).
                      std::ofstream, fopen, and rename anywhere else would
                      create files outside the atomic-write discipline
                      (tmp + fsync + rename) that crash recovery relies on.
  transport-syscalls  raw process and socket syscalls (socket/bind/listen/
                      accept/connect, fork/exec/waitpid/kill, mkdtemp,
                      send/recv) appear only in src/dist/transport/, where
                      the SocketTransport owns process lifecycles and frame
                      I/O. Anywhere else they would spawn workers or move
                      bytes outside the Transport seam, invisible to the
                      CommStats ledger and the fault injector.
  async-seam          asynchrony is expressed only through dist/async.h
                      (Future/Promise/Mailbox): std::promise, std::future,
                      std::packaged_task, and std::async appear nowhere
                      outside src/dist/, and std::condition_variable only in
                      src/dist/ and common/mutex.h. Ad-hoc futures or
                      condvars would bypass the mailboxes' per-machine FIFO
                      ordering that keeps fault injection deterministic.

Exit status 0 when clean; 1 with "file:line: [rule] message" diagnostics
otherwise. Run as a CTest case (dbtf_lint) and in CI.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# (rule, regex) pairs are matched per line, after comment stripping.
WORKER_INCLUDE_RE = re.compile(r'#\s*include\s+"dist/worker\.h"')
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:(?:std|dbtf)::)?[Mm]utex\s+(\w+_)\s*;")
THREAD_RE = re.compile(r"\bstd::thread\b(?!\s*::)")
COMM_MUTATION_RE = re.compile(
    r"(?:\.|->)\s*(?:Record(?:Shuffle|Broadcast|Collect|Query)|Reset)\s*\(")
# Reset() is only a ledger mutation when called on a CommStats; restrict the
# Reset arm to lines that name the ledger to avoid flagging unrelated Resets.
COMM_RESET_RE = re.compile(r"\bcomm(?:_|\(\))\s*\.\s*Reset\s*\(")
COMM_RECORD_RE = re.compile(
    r"(?:\.|->)\s*Record(?:Shuffle|Broadcast|Collect|Query)\s*\(")
GUARDED_BY_RE = re.compile(r"(?:DBTF_)?GUARDED_BY\((\w+_?)\)")
# Wall-clock sleeps in the runtime (src/dist/, src/dbtf/). Faults, backoff,
# and stalls are charged to the virtual clocks; a real sleep would leak wall
# time into what the virtual makespan is supposed to model.
SLEEP_RE = re.compile(
    r"\bstd::this_thread::sleep_(?:for|until)\b|\busleep\s*\(|"
    r"\bnanosleep\s*\(|(?<![\w:])sleep\s*\(")
UNAVAILABLE_RE = re.compile(r"\bStatus::Unavailable\s*\(")
RECOVERY_RECORD_RE = re.compile(
    r"(?:\.|->)\s*Record(?:FailedDelivery|Retry|MachineLost|Reprovision|"
    r"Stall)\s*\(")
# Filesystem writes (and the rename that publishes them) are confined to the
# checkpoint store and the tensor text codecs; see `filesystem-write` above.
FILESYSTEM_WRITE_RE = re.compile(
    r"(?<![\w:])(?:std::)?(?:ofstream\b|fopen\s*\(|rename\s*\()")
# Raw process/socket syscalls belong to the SocketTransport. The lookbehind
# keeps qualified names like std::bind out; string literals are blanked
# before matching (usage text mentions "socket (" legitimately).
TRANSPORT_SYSCALL_RE = re.compile(
    r"(?<![\w:])(?:socket|socketpair|bind|listen|accept|connect|setsockopt|"
    r"send|sendmsg|recv|recvmsg|fork|vfork|exec[vl][pe]*|waitpid|kill|"
    r"mkdtemp)\s*\(")
STRING_LITERAL_RE = re.compile(r'"(?:\\.|[^"\\])*"')
ASYNC_PRIMITIVE_RE = re.compile(
    r"\bstd::(?:promise|future|shared_future|packaged_task|async)\b")
CONDVAR_RE = re.compile(r"\bstd::condition_variable(?:_any)?\b")

BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)


def relative_posix(path: Path, root: Path) -> str:
    return path.relative_to(root).as_posix()


def strip_comments(text: str) -> str:
    """Blanks comments while preserving line numbers."""
    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    text = BLOCK_COMMENT_RE.sub(blank, text)
    return "\n".join(line.split("//", 1)[0] for line in text.split("\n"))


def check_file(rel: str, text: str) -> list[tuple[int, str, str]]:
    """Returns (line, rule, message) findings for one source file."""
    findings = []
    lines = strip_comments(text).split("\n")

    allow_worker_include = rel.startswith("dist/") or rel == "dbtf/engine.cc"
    allow_thread = rel in ("dist/thread_pool.h", "dist/thread_pool.cc")
    allow_comm_mutation = rel == "dist/cluster.cc"
    # The fault seam itself and the retrying router are the only places that
    # may manufacture kUnavailable; everyone else receives it through routing.
    allow_unavailable = rel in ("dist/fault.cc", "dist/cluster.cc",
                                "common/status.h", "common/status.cc")
    check_fault_handling = rel.startswith("dist/") or rel.startswith("dbtf/")
    # RecoveryLedger's own method definitions use :: qualification, which the
    # mutation regex (object '.'/'->' prefix) deliberately does not match.
    allow_recovery_mutation = rel == "dist/cluster.cc"
    # dist/async.h is the async seam; the rest of src/dist/ implements it
    # (thread pool, mailboxes, routing). common/mutex.h wraps the condvar.
    # The checkpoint store owns the atomic-write discipline; the tensor text
    # codecs are the only other sanctioned writers (CLI output goes through
    # them).
    allow_filesystem_write = (rel.startswith("ckpt/")
                              or rel in ("tensor/io.cc", "tensor/io.h"))
    allow_transport_syscall = rel.startswith("dist/transport/")
    allow_async_primitive = rel.startswith("dist/")
    allow_condvar = rel.startswith("dist/") or rel == "common/mutex.h"
    # common/mutex.h wraps the underlying std::mutex; comm_stats.h defines
    # the Record* methods themselves (no object prefix, so the mutation
    # regexes would not fire there anyway).
    check_mutex_members = rel != "common/mutex.h"

    guarded = set(GUARDED_BY_RE.findall(text))

    for lineno, line in enumerate(lines, start=1):
        if not allow_worker_include and WORKER_INCLUDE_RE.search(line):
            findings.append((
                lineno, "worker-include",
                "dist/worker.h is only visible to src/dist/ and "
                "src/dbtf/engine.cc; drive workers through Cluster routing "
                "or dist/provision.h"))
        if check_mutex_members:
            m = MUTEX_MEMBER_RE.match(line)
            if m and m.group(1) not in guarded:
                findings.append((
                    lineno, "naked-mutex",
                    f"mutex member '{m.group(1)}' guards nothing: annotate "
                    f"the protected members with "
                    f"DBTF_GUARDED_BY({m.group(1)})"))
        if not allow_thread and THREAD_RE.search(line):
            findings.append((
                lineno, "thread-construction",
                "std::thread objects are created only by "
                "src/dist/thread_pool.{h,cc}; submit work to the pool "
                "instead"))
        if not allow_comm_mutation and (COMM_RECORD_RE.search(line)
                                        or COMM_RESET_RE.search(line)):
            findings.append((
                lineno, "comm-stats-mutation",
                "the CommStats ledger is charged only by Cluster "
                "(src/dist/cluster.cc) so routed bytes are counted exactly "
                "once"))
        if check_fault_handling and SLEEP_RE.search(line):
            findings.append((
                lineno, "fault-handling",
                "no wall-clock sleeps in the runtime: faults, stalls, and "
                "retry backoff are charged to the virtual clocks via "
                "dist/fault.h"))
        if (check_fault_handling and not allow_unavailable
                and UNAVAILABLE_RE.search(line)):
            findings.append((
                lineno, "fault-handling",
                "Status::Unavailable is manufactured only by the fault seam "
                "(dist/fault.cc) and the retrying router (dist/cluster.cc); "
                "express failures through dist/fault.h"))
        if not allow_recovery_mutation and RECOVERY_RECORD_RE.search(line):
            findings.append((
                lineno, "recovery-stats-mutation",
                "the RecoveryLedger is charged only by Cluster "
                "(src/dist/cluster.cc) so every retry and re-provision is "
                "counted exactly once"))
        if not allow_filesystem_write and FILESYSTEM_WRITE_RE.search(line):
            findings.append((
                lineno, "filesystem-write",
                "filesystem writes are confined to the checkpoint store "
                "(src/ckpt/) and the tensor text codecs (src/tensor/io.cc); "
                "durable state written elsewhere escapes the atomic "
                "tmp+fsync+rename discipline"))
        if (not allow_transport_syscall
                and TRANSPORT_SYSCALL_RE.search(STRING_LITERAL_RE.sub('""',
                                                                      line))):
            findings.append((
                lineno, "transport-syscalls",
                "raw process/socket syscalls live only in "
                "src/dist/transport/ (the SocketTransport owns process "
                "lifecycles and frame I/O); route work through the "
                "Transport seam"))
        if not allow_async_primitive and ASYNC_PRIMITIVE_RE.search(line):
            findings.append((
                lineno, "async-seam",
                "futures and promises come only from dist/async.h "
                "(Future/Promise over the mailbox runtime); std:: async "
                "primitives outside src/dist/ bypass the per-machine FIFO "
                "ordering"))
        if not allow_condvar and CONDVAR_RE.search(line):
            findings.append((
                lineno, "async-seam",
                "std::condition_variable is confined to src/dist/ and "
                "common/mutex.h; block on a Future or drain a Mailbox "
                "instead of hand-rolled signalling"))
    return findings


def lint_tree(root: Path) -> list[str]:
    src = root / "src"
    diagnostics = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc") or not path.is_file():
            continue
        rel = relative_posix(path, src)
        text = path.read_text(encoding="utf-8")
        for lineno, rule, message in check_file(rel, text):
            diagnostics.append(
                f"{relative_posix(path, root)}:{lineno}: [{rule}] {message}")
    return diagnostics


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parent.parent,
        help="repository root containing src/ (default: this repo)")
    args = parser.parse_args(argv)

    if not (args.root / "src").is_dir():
        print(f"dbtf_lint: no src/ under {args.root}", file=sys.stderr)
        return 2
    diagnostics = lint_tree(args.root.resolve())
    for diagnostic in diagnostics:
        print(diagnostic)
    if diagnostics:
        print(f"dbtf_lint: {len(diagnostics)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
