// Fixture: driver code charging the ledger directly instead of via Cluster.
#include "dist/cluster.h"

void Charge(dbtf::Cluster* cluster) {
  cluster->comm().RecordShuffle(1024);  // violation: cluster.cc only
  cluster->comm().RecordQuery(64);      // violation: cluster.cc only
  cluster->comm().Reset();              // violation: cluster.cc only
}
