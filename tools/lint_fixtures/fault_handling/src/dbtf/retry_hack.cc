// Fixture: ad-hoc fault handling in driver code instead of dist/fault.h.
#include <chrono>
#include <thread>

#include "common/status.h"

dbtf::Status WaitForWorker() {
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // violation
  usleep(1000);  // violation: wall-clock sleep in the runtime
  // violation: manufacturing kUnavailable outside the fault seam
  return dbtf::Status::Unavailable("worker busy");
}
