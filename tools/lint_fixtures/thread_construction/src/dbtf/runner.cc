// Fixture: driver code spawning its own OS thread instead of using the pool.
#include <thread>

void Run() {
  std::thread worker([] {});  // violation: only thread_pool.{h,cc} may
  worker.join();
}
