// Fixture: raw process/socket syscalls outside src/dist/transport/ trip the
// transport-syscalls rule. The string literal and std::bind must not.

namespace dbtf {

inline const char* kUsage = "socket (socket runs one process per machine)";

int LaunchSidecar(const char* path) {
  int fd = socket(1, 1, 0);
  bool bound = fd >= 0 && bind(fd, nullptr, 0) == 0;
  if (bound && listen(fd, 4) == 0) {
    int pid = fork();
    if (pid == 0) execv(path, nullptr);
    kill(pid, 9);
    waitpid(pid, nullptr, 0);
  }
  auto deferred = std::bind(&LaunchSidecar, path);
  (void)deferred;
  (void)kUsage;
  return fd;
}

}  // namespace dbtf
