// Fixture: driver-layer header reaching into the worker directly.
#ifndef FIXTURE_SESSION_H_
#define FIXTURE_SESSION_H_

#include "dist/cluster.h"
#include "dist/worker.h"  // violation: only src/dist/ and engine.cc may

#endif  // FIXTURE_SESSION_H_
