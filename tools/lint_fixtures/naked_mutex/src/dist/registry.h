// Fixture: a mutex member with no DBTF_GUARDED_BY data anywhere in the file.
#ifndef FIXTURE_REGISTRY_H_
#define FIXTURE_REGISTRY_H_

#include <mutex>
#include <vector>

class Registry {
 private:
  mutable std::mutex mu_;  // violation: guards nothing
  std::vector<int> entries_;
};

#endif  // FIXTURE_REGISTRY_H_
