// Fixture: driver code charging the recovery ledger directly instead of
// letting Cluster's charging layer count the retry/re-provision.
#include "dist/cluster.h"

void Heal(dbtf::Cluster* cluster, dbtf::RecoveryLedger* ledger) {
  ledger->RecordRetry(0.001);            // violation: cluster.cc only
  ledger->RecordReprovision(4096, 0.1);  // violation: cluster.cc only
}
