// Fixture: ad-hoc asynchrony in driver code instead of dist/async.h.
#ifndef FIXTURE_PIPELINE_H_
#define FIXTURE_PIPELINE_H_

#include <condition_variable>
#include <future>

namespace dbtf {

class Pipeline {
 public:
  std::future<int> Launch() {
    return std::async([] { return 1; });
  }

 private:
  std::promise<int> result_;
  std::condition_variable ready_;
};

}  // namespace dbtf

#endif  // FIXTURE_PIPELINE_H_
