// Fixture: durable state written outside the sanctioned seams (src/ckpt/
// and src/tensor/io.cc), escaping the atomic tmp+fsync+rename discipline.
#include <cstdio>
#include <fstream>
#include <string>

void DumpFactors(const std::string& path) {
  std::ofstream out(path);  // violation: ad-hoc file write in driver code
  out << "A\n";
  std::FILE* f = std::fopen((path + ".bin").c_str(), "wb");  // violation
  if (f != nullptr) std::fclose(f);
  // violation: publishing a file by rename outside the checkpoint store
  std::rename((path + ".tmp").c_str(), path.c_str());
}
