// Fixture: rule-abiding dist-layer code — every pattern here is allowed.
#ifndef FIXTURE_POOL_H_
#define FIXTURE_POOL_H_

#include <deque>
#include <thread>
#include <vector>

#include "dist/worker.h"  // fine: src/dist/ may see the worker

class Pool {
 public:
  // Reading a static member is not thread construction.
  static unsigned Cores() { return std::thread::hardware_concurrency(); }

 private:
  dbtf::Mutex mu_;
  std::deque<int> queue_ DBTF_GUARDED_BY(mu_);
  // A comment mentioning comm().RecordBroadcast(1) must not trip the rule.
};

#endif  // FIXTURE_POOL_H_
