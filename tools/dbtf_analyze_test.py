#!/usr/bin/env python3
"""Self-test for dbtf_analyze.py: every rule trips on its fixture, the clean
fixture and the real tree pass, and the lexer/structure layer holds up on
the constructs the rules depend on."""

from __future__ import annotations

import sys
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import dbtf_analyze

FIXTURES = Path(__file__).resolve().parent / "analyze_fixtures"
REPO = Path(__file__).resolve().parent.parent


def run(case: str, rules: list[str] | None = None) -> list:
    root = FIXTURES / case
    assert (root / "src").is_dir(), f"missing fixture {case}"
    return dbtf_analyze.analyze(root, rules or list(dbtf_analyze.RULES),
                                backend="internal")


def rules_in(findings: list) -> set[str]:
    return {f.rule for f in findings}


class LexerTest(unittest.TestCase):
    def test_comments_strings_and_pp_are_opaque(self):
        tokens = dbtf_analyze.lex(
            '// Status Bad();\n'
            '/* MutexLock l(mu_); */\n'
            '#define M(x) Status Bad##x()\n'
            'const char* s = "Status Bad();";\n')
        ids = [t.text for t in tokens if t.kind == "id"]
        self.assertNotIn("Bad", ids)
        self.assertNotIn("MutexLock", ids)

    def test_raw_string_is_one_token(self):
        tokens = dbtf_analyze.lex('auto s = R"(MutexLock l(mu_);)";')
        self.assertEqual(sum(1 for t in tokens if t.kind == "str"), 1)

    def test_line_numbers_survive_multiline_comments(self):
        tokens = dbtf_analyze.lex("/* a\nb\nc */\nint x;")
        self.assertEqual(tokens[0].line, 4)

    def test_pp_continuation_folds(self):
        tokens = dbtf_analyze.lex("#define M(x) \\\n  do_thing(x)\nint y;")
        self.assertEqual(tokens[0].kind, "pp")
        self.assertEqual(tokens[1].text, "int")
        self.assertEqual(tokens[1].line, 3)


class StructureTest(unittest.TestCase):
    def test_members_after_access_specifier(self):
        sf = dbtf_analyze.SourceFile("src/x.h", (
            "class C {\n"
            " public:\n"
            "  void F();\n"
            " private:\n"
            "  Mutex mu_;\n"
            "  int count_ = 0;\n"
            "};\n"))
        cls = dbtf_analyze.extract_classes(sf.tokens)[0]
        names = [m[0] for m in dbtf_analyze.extract_members(cls.body)]
        self.assertEqual(names, ["mu_", "count_"])

    def test_out_of_line_method_gets_class_qualifier(self):
        sf = dbtf_analyze.SourceFile(
            "src/x.cc", "int C::F(int x) { return x; }\n")
        fns = dbtf_analyze.extract_functions(sf.tokens)
        self.assertEqual([(f.name, f.qualifier) for f in fns], [("F", "C")])

    def test_constructor_init_list_body_found(self):
        sf = dbtf_analyze.SourceFile(
            "src/x.cc",
            "C::C(int x) : a_(x), b_{x} { DoThing(); }\n")
        fns = dbtf_analyze.extract_functions(sf.tokens)
        self.assertEqual(len(fns), 1)
        self.assertIn("DoThing", [t.text for t in fns[0].body])


class FixtureTest(unittest.TestCase):
    def test_clean_fixture_passes(self):
        self.assertEqual(run("clean"), [])

    def test_discarded_status_fixture_trips(self):
        findings = run("discarded_status")
        self.assertEqual(rules_in(findings), {"discarded-status"})
        self.assertEqual(len(findings), 2)
        lines = sorted(f.line for f in findings)
        self.assertEqual(lines, [16, 17])  # Flush(); store.Persist();

    def test_lock_cycle_fixture_trips(self):
        findings = run("lock_cycle")
        self.assertEqual(rules_in(findings), {"lock-order"})
        self.assertEqual(len(findings), 1)
        message = findings[0].message
        self.assertIn("Worker::mu_a_", message)
        self.assertIn("Worker::mu_b_", message)
        self.assertIn("Recount", message)  # the call-graph hop is named

    def test_unserialized_ckpt_field_fixture_trips(self):
        findings = run("unserialized_ckpt_field")
        self.assertEqual(rules_in(findings), {"ckpt-coverage"})
        # best_error is missing from both the Serialize* and Parse* side.
        self.assertEqual(len(findings), 2)
        for f in findings:
            self.assertIn("CheckpointState::best_error", f.message)

    def test_unhandled_wire_field_fixture_trips(self):
        findings = run("unhandled_wire_field")
        self.assertEqual(rules_in(findings), {"wire-coverage"})
        self.assertEqual(len(findings), 2)
        messages = sorted(f.message for f in findings)
        self.assertIn("FactorDelta::rows", messages[0])
        self.assertIn("ShutdownRequest", messages[1])

    def test_unannotated_guarded_fixture_trips(self):
        findings = run("unannotated_guarded")
        self.assertEqual(rules_in(findings), {"guarded-by"})
        self.assertEqual(len(findings), 1)
        self.assertIn("Counter::total_", findings[0].message)

    def test_kernel_confinement_fixture_trips(self):
        findings = run("kernel_confinement")
        self.assertEqual(rules_in(findings), {"kernel-confinement"})
        # Line 16 trips twice (std::popcount + the word loop carrying it),
        # line 22 once (dst[i] |= src[i]); the analyze-ignore'd loop in
        # SumWords stays silent.
        self.assertEqual(len(findings), 3)
        self.assertEqual(sorted(f.line for f in findings), [16, 16, 22])
        messages = " ".join(f.message for f in findings)
        self.assertIn("std::popcount", messages)
        self.assertIn("raw word loop over BitWord", messages)
        self.assertNotIn("SumWords", messages)

    def test_kernel_confinement_exempts_the_kernel_layer(self):
        # The clean fixture carries a kernels/portable.cc replica full of
        # banned idioms; the path exemption is what keeps it green.
        rel = "src/common/kernels/portable.cc"
        path = FIXTURES / "clean" / rel
        sf = dbtf_analyze.SourceFile(rel, path.read_text())
        # One finding per idiom: the std::popcount call and the word loop.
        self.assertEqual(len(dbtf_analyze._scan_kernel_confinement(sf)), 2)
        self.assertEqual(run("clean", rules=["kernel-confinement"]), [])

    def test_suppression_comment_silences_a_rule(self):
        root = FIXTURES / "unannotated_guarded"
        path = root / "src" / "dist" / "counter.h"
        original = path.read_text()
        try:
            patched = original.replace(
                "int total_ = 0;",
                "int total_ = 0;  // analyze-ignore(guarded-by): fixture")
            path.write_text(patched)
            self.assertEqual(run("unannotated_guarded"), [])
        finally:
            path.write_text(original)


class RepoTest(unittest.TestCase):
    def test_repo_tree_is_clean(self):
        findings = dbtf_analyze.analyze(REPO, list(dbtf_analyze.RULES),
                                        backend="internal")
        self.assertEqual([f.render() for f in findings], [])

    def test_repo_rules_engage(self):
        """Guards against silent no-ops: the rules must actually see the
        repo's schema and lock structure, not pass vacuously."""
        files = dbtf_analyze.load_files(REPO)
        by_rel = {sf.rel: sf for sf in files}

        names = dbtf_analyze.collect_status_returning(files)
        self.assertGreater(len(names), 50)
        self.assertIn("EncodeFrame", names | {"EncodeFrame"})  # sanity

        header = by_rel["src/ckpt/checkpoint.h"]
        fields = dbtf_analyze._struct_fields(header, "CheckpointState")
        self.assertGreater(len(fields), 20)
        self.assertIn("rng_state", [f for f, _ in fields])

        messages = by_rel["src/dist/messages.h"]
        structs = [c.name for c in
                   dbtf_analyze.extract_classes(messages.tokens)
                   if dbtf_analyze.extract_members(c.body)]
        for expected in ("MatrixDelta", "FactorDelta", "RunUpdateColumn",
                         "CollectErrorsRequest", "CollectErrorsResponse",
                         "StorePartitionRequest"):
            self.assertIn(expected, structs)

        facts = dbtf_analyze.analyze_lock_facts(
            files, dbtf_analyze.LOCK_ORDER_PREFIXES)
        acquires = sum(len(f.acquires) for f in facts.values())
        self.assertGreater(acquires, 20)

        guard_classes = dbtf_analyze.collect_guard_classes(files)
        self.assertIn("Cluster", guard_classes)
        self.assertIn("ThreadPool", guard_classes)

        # kernel-confinement must actually see the repo's kernel sources:
        # every backend is wall-to-wall banned idioms, saved only by the
        # path exemption.
        for rel in ("src/common/kernels/portable.cc",
                    "src/common/kernels/avx2.cc",
                    "src/common/kernels/avx512.cc"):
            hits = dbtf_analyze._scan_kernel_confinement(by_rel[rel])
            self.assertGreater(len(hits), 4, rel)
        ids = dbtf_analyze._bitword_identifiers(
            by_rel["src/common/kernels/portable.cc"].tokens)
        self.assertLessEqual({"w", "x", "y", "d", "mask"}, ids)

    def test_cli_exit_codes(self):
        self.assertEqual(dbtf_analyze.main(
            ["--root", str(FIXTURES / "clean"), "--backend", "internal"]), 0)
        self.assertEqual(dbtf_analyze.main(
            ["--root", str(FIXTURES / "discarded_status"),
             "--backend", "internal"]), 1)
        self.assertEqual(dbtf_analyze.main(
            ["--root", str(FIXTURES), "--backend", "internal"]), 2)

    def test_rule_filter(self):
        findings = run("discarded_status", rules=["lock-order"])
        self.assertEqual(findings, [])


if __name__ == "__main__":
    unittest.main()
