#!/usr/bin/env python3
"""DBTF project analyzer: AST-grade rules the regex linter cannot express.

Where tools/dbtf_lint.py matches per-line patterns, this tool lexes the C++
sources into a token stream, recovers the class/function structure, and
checks whole-program properties (see DESIGN.md, "Correctness tooling"):

  discarded-status    a call whose result is dbtf::Status or Result<T> and
                      whose value is not consumed is an error. Backed by
                      [[nodiscard]] on both types (common/status.h) plus
                      -Werror=unused-result; this pass additionally catches
                      discards the compiler cannot see (macro bodies,
                      uninstantiated templates). Intentional drops must be
                      written DBTF_IGNORE_ERROR(expr).
  lock-order          extracts the dbtf::Mutex acquisition graph (MutexLock
                      scopes, one level of call-graph propagation) across
                      src/dist/, src/ckpt/, and src/dbtf/ and fails on any
                      cycle, printing the witness path. A cycle is a
                      potential deadlock even if today's schedules never
                      interleave it.
  ckpt-coverage       every CheckpointState (and FactorShadowSnapshot) field
                      must be written by Session::BuildCheckpoint, read by
                      Session::RestoreFromCheckpoint, serialized by a
                      ckpt_format::Serialize* blob codec, and parsed by the
                      matching ckpt_format::Parse* codec. Adding a field
                      without serializing it (or bumping kFormatVersion) is
                      a build-time failure, not a silent resume corruption.
  wire-coverage       every field of every message struct in dist/messages.h
                      must be referenced by both its Encode* and Decode*
                      codec in dist/transport/wire.cc, and both codecs must
                      exist. A field that never crosses the wire would
                      desynchronize the socket transport from the in-process
                      oracle.
  guarded-by          a class data member assigned or mutated while a
                      MutexLock holds one of the class's mutexes must carry
                      a DBTF_GUARDED_BY annotation, so Clang's thread-safety
                      analysis (the CI clang leg) can see every guarded
                      member. Atomics and the mutexes themselves are exempt.
  kernel-confinement  hand-rolled word iteration over BitWord data belongs
                      in src/common/kernels/ (plus the bitops.h/bitspan.h
                      shims) and nowhere else. Two idioms are errors in any
                      other src/ file: a `std::popcount` call, and a
                      BitWord-typed identifier subscripted and combined
                      with a bitwise operator inside a for/while loop.
                      Callers go through the BoolKernels dispatch table so
                      every backend (portable/AVX2/AVX-512) stays
                      bit-for-bit identical and the portable oracle remains
                      the single semantic definition.

Backends:
  internal   a built-in C++ lexer + structural parser; no dependencies
             beyond the standard library. Always available; implements all
             rules.
  libclang   when python3 clang bindings (clang.cindex) and a libclang
             shared object are installed, the discarded-status rule is
             re-derived from the real clang AST over the exported
             compile_commands.json, which sees through typedefs and
             template instantiation. Missing bindings degrade to the
             internal backend with a note — never to a weaker check.

Suppression: a line may opt out of one rule with a trailing
`// analyze-ignore(<rule>): reason` comment. Suppressions are deliberate
and reviewable, like NOLINT.

Exit status: 0 clean, 1 findings, 2 usage/environment error. Output format
is `file:line: [rule] message`, one finding per line. Run as the ctest
cases dbtf_analyze / dbtf_analyze_selftest and as a hard CI gate.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

RULES = ("discarded-status", "lock-order", "ckpt-coverage", "wire-coverage",
         "guarded-by", "kernel-confinement")

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

# Token kinds: id, num, str, chr, punct, pp (whole preprocessor directive).
TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<rawstr>R"(?P<delim>[^()\s\\]{0,16})\(.*?\)(?P=delim)")
  | (?P<str>"(?:\\.|[^"\\\n])*")
  | (?P<chr>'(?:\\.|[^'\\\n])*')
  | (?P<num>\.?\d(?:[\w.']|[eEpP][+-])*)
  | (?P<id>[A-Za-z_]\w*)
  | (?P<punct><<=|>>=|->\*|\.\.\.|::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||
      \+=|-=|\*=|/=|%=|&=|\|=|\^=|[{}()\[\];:,.<>+\-*/%&|^!~=?#@\\])
    """,
    re.VERBOSE | re.DOTALL)

PP_CONT_RE = re.compile(r"\\\s*\n")


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int


def lex(text: str) -> list[Token]:
    """Tokenizes C++ source. Preprocessor directives become single 'pp'
    tokens (with continuations folded) so the statement grammar below never
    trips over macro definitions."""
    tokens: list[Token] = []
    line = 1
    pos = 0
    n = len(text)
    at_line_start = True
    while pos < n:
        ch = text[pos]
        if at_line_start or (ch == "#" and tokens and
                             tokens[-1].line != line):
            # Detect a preprocessor directive at the start of a line.
            stripped = pos
            while stripped < n and text[stripped] in " \t":
                stripped += 1
            if stripped < n and text[stripped] == "#":
                end = stripped
                while True:
                    nl = text.find("\n", end)
                    if nl == -1:
                        nl = n
                    chunk = text[stripped:nl]
                    if chunk.rstrip().endswith("\\"):
                        end = nl + 1
                        continue
                    break
                directive = text[stripped:nl]
                tokens.append(Token("pp", PP_CONT_RE.sub(" ", directive),
                                    line))
                line += text.count("\n", pos, min(nl + 1, n))
                pos = nl + 1
                at_line_start = True
                continue
        m = TOKEN_RE.match(text, pos)
        if not m:
            pos += 1  # unknown byte: skip
            at_line_start = False
            continue
        kind = m.lastgroup
        value = m.group(0)
        if kind == "delim":  # pragma: no cover - named subgroup artifact
            kind = "rawstr"
        if kind not in ("ws", "comment"):
            out_kind = {"rawstr": "str"}.get(kind, kind)
            tokens.append(Token(out_kind, value, line))
        line += value.count("\n")
        at_line_start = value.endswith("\n") or (kind in ("ws", "comment")
                                                 and "\n" in value)
        pos = m.end()
    return tokens


IGNORE_RE = re.compile(r"analyze-ignore\((?P<rules>[\w,\- ]+)\)")


def collect_suppressions(text: str) -> dict[int, set[str]]:
    """Maps line number -> rules suppressed on that line."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.split("\n"), start=1):
        m = IGNORE_RE.search(line)
        if m:
            out[lineno] = {r.strip() for r in m.group("rules").split(",")}
    return out


# ---------------------------------------------------------------------------
# Structural parsing: classes, functions, member declarations
# ---------------------------------------------------------------------------

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return",
                    "sizeof", "alignof", "decltype", "else", "do", "new",
                    "delete", "throw", "co_return", "co_await", "static_cast",
                    "reinterpret_cast", "const_cast", "dynamic_cast"}


@dataclass
class Function:
    name: str                 # unqualified name
    qualifier: str | None     # explicit Class:: qualifier or enclosing class
    line: int
    body: list[Token]         # tokens inside the braces, exclusive


@dataclass
class ClassInfo:
    name: str
    line: int
    body: list[Token]


def _match_brace(tokens: list[Token], open_index: int) -> int:
    """Index of the '}' matching tokens[open_index] == '{'."""
    depth = 0
    for i in range(open_index, len(tokens)):
        t = tokens[i]
        if t.kind == "punct":
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    return i
    return len(tokens) - 1


def _match_paren(tokens: list[Token], open_index: int) -> int:
    depth = 0
    for i in range(open_index, len(tokens)):
        t = tokens[i]
        if t.kind == "punct":
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    return i
    return len(tokens) - 1


def extract_classes(tokens: list[Token]) -> list[ClassInfo]:
    """Top-level and nested class/struct definitions with bodies."""
    classes = []
    i = 0
    while i < len(tokens):
        t = tokens[i]
        if t.kind == "id" and t.text in ("class", "struct"):
            # class [attr] Name [final] [: bases] {   — skip fwd decls.
            j = i + 1
            # Skip attributes and capability macros: DBTF_CAPABILITY("..."),
            # DBTF_SCOPED_CAPABILITY, alignas(...), [[...]].
            name = None
            while j < len(tokens):
                tj = tokens[j]
                if tj.kind == "id":
                    if (j + 1 < len(tokens) and tokens[j + 1].kind == "punct"
                            and tokens[j + 1].text == "("):
                        j = _match_paren(tokens, j + 1) + 1
                        continue
                    name = tj.text
                    j += 1
                    break
                if tj.kind == "punct" and tj.text == "[":
                    while j < len(tokens) and tokens[j].text != "]":
                        j += 1
                    j += 1
                    continue
                break
            # Find '{' before any ';' (else it's a declaration/variable).
            k = j
            brace = None
            while k < len(tokens):
                tk = tokens[k]
                if tk.kind == "punct":
                    if tk.text == ";":
                        break
                    if tk.text == "{":
                        brace = k
                        break
                    if tk.text == "(":  # 'struct X foo(...)' etc.
                        break
                k += 1
            if name and brace is not None:
                close = _match_brace(tokens, brace)
                classes.append(ClassInfo(name, t.line,
                                         tokens[brace + 1:close]))
                classes.extend(extract_classes(tokens[brace + 1:close]))
                i = close + 1
                continue
        i += 1
    return classes


def extract_functions(tokens: list[Token],
                      enclosing: str | None = None) -> list[Function]:
    """Function definitions (with bodies) in a token stream, recursing into
    class bodies so inline methods get their enclosing class as qualifier."""
    functions: list[Function] = []
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "id" and t.text in ("class", "struct"):
            # Delegate to extract_classes-style scan for the body.
            j = i + 1
            name = None
            while j < n:
                tj = tokens[j]
                if tj.kind == "id":
                    if (j + 1 < n and tokens[j + 1].kind == "punct"
                            and tokens[j + 1].text == "("):
                        j = _match_paren(tokens, j + 1) + 1
                        continue
                    name = tj.text
                    j += 1
                    break
                if tj.kind == "punct" and tj.text == "[":
                    while j < n and tokens[j].text != "]":
                        j += 1
                    j += 1
                    continue
                break
            k = j
            brace = None
            while k < n:
                tk = tokens[k]
                if tk.kind == "punct" and tk.text in (";", "(", "{"):
                    brace = k if tk.text == "{" else None
                    break
                k += 1
            if name and brace is not None:
                close = _match_brace(tokens, brace)
                functions.extend(
                    extract_functions(tokens[brace + 1:close], name))
                i = close + 1
                continue
            i = j
            continue
        if (t.kind == "punct" and t.text == "("
                and i > 0 and tokens[i - 1].kind == "id"
                and tokens[i - 1].text not in CONTROL_KEYWORDS):
            name_index = i - 1
            name = tokens[name_index].text
            qualifier = enclosing
            if (name_index >= 2 and tokens[name_index - 1].kind == "punct"
                    and tokens[name_index - 1].text == "::"
                    and tokens[name_index - 2].kind == "id"):
                qualifier = tokens[name_index - 2].text
            close_paren = _match_paren(tokens, i)
            # Scan past trailer (const, noexcept, override, ->type,
            # constructor init list) looking for '{' before ';' or '='.
            j = close_paren + 1
            brace = None
            while j < n:
                tj = tokens[j]
                if tj.kind == "punct":
                    if tj.text == "{":
                        brace = j
                        break
                    if tj.text in (";", "=", ","):
                        break
                    if tj.text == "(":
                        j = _match_paren(tokens, j) + 1
                        continue
                    if tj.text == ":":
                        # Constructor init list: id(…) or id{…} groups.
                        j += 1
                        while j < n:
                            tk = tokens[j]
                            if tk.kind == "punct" and tk.text == "(":
                                j = _match_paren(tokens, j) + 1
                            elif tk.kind == "punct" and tk.text == "{":
                                # An init group's '{' directly follows the
                                # member's identifier (b_{x}); the body's
                                # '{' follows an init group's closer.
                                if (j > 0 and tokens[j - 1].kind == "id"):
                                    j = _match_brace(tokens, j) + 1
                                else:
                                    brace = j
                                    break
                            elif tk.kind == "punct" and tk.text == ";":
                                break
                            else:
                                j += 1
                        break
                j += 1
            if brace is not None:
                close = _match_brace(tokens, brace)
                body = tokens[brace + 1:close]
                functions.append(Function(name, qualifier,
                                          tokens[name_index].line, body))
                # Lambdas/local classes inside bodies are rare here; still
                # recurse so nested definitions are visible.
                i = close + 1
                continue
            i = close_paren + 1
            continue
        i += 1
    return functions


MEMBER_SKIP_STARTERS = {"using", "typedef", "friend", "public", "private",
                        "protected", "static_assert", "enum", "class",
                        "struct", "template", "operator"}


def extract_members(class_body: list[Token]) -> list[tuple[str, int, str]]:
    """Data member declarations of a class body as (name, line, decl_text).

    Skips methods (a '(' directly after the declared name), nested types,
    using/friend/typedef, and access specifiers. decl_text is the statement's
    token text joined by spaces — annotation macros included."""
    members = []
    i = 0
    n = len(class_body)
    depth = 0
    while i < n:
        t = class_body[i]
        if t.kind == "punct" and t.text == "{":
            i = _match_brace(class_body, i) + 1
            continue
        if t.kind == "pp":
            i += 1
            continue
        # Access specifiers are their own pseudo-statement; consuming them
        # here keeps them from swallowing the following declaration.
        if (t.kind == "id" and t.text in ("public", "private", "protected")
                and i + 1 < n and class_body[i + 1].kind == "punct"
                and class_body[i + 1].text == ":"):
            i += 2
            continue
        # Statement start at depth 0.
        start = i
        # Collect tokens to ';' at depth 0 (skipping nested () {} <> pairs).
        stmt: list[Token] = []
        angle = 0
        while i < n:
            tk = class_body[i]
            if tk.kind == "punct":
                if tk.text == "(":
                    end = _match_paren(class_body, i)
                    stmt.extend(class_body[i:end + 1])
                    i = end + 1
                    continue
                if tk.text == "{":
                    end = _match_brace(class_body, i)
                    stmt.extend(class_body[i:end + 1])
                    i = end + 1
                    # 'Type name{init};' continues; 'void f() {…}' ends. A
                    # method body '}' not followed by ';' ends the statement.
                    if not (i < n and class_body[i].kind == "punct"
                            and class_body[i].text == ";"):
                        break
                    continue
                if tk.text == "<":
                    angle += 1
                elif tk.text == ">" and angle > 0:
                    angle -= 1
                elif tk.text == ";" and angle == 0:
                    stmt.append(tk)
                    i += 1
                    break
            stmt.append(tk)
            i += 1
        if not stmt or stmt[-1].text != ";":
            continue
        first = stmt[0]
        if first.kind != "id" or first.text in MEMBER_SKIP_STARTERS:
            continue
        if any(tok.kind == "id" and tok.text in ("operator", "friend",
                                                 "using", "typedef")
               for tok in stmt):
            continue
        # Method declaration: '(' directly after an identifier that is
        # followed (eventually) by ');' — i.e. the statement contains '('
        # immediately after the declared name. Find candidate name: the
        # identifier right before '=', '{', '[', 'DBTF_GUARDED_BY', or ';'.
        name = None
        for j, tok in enumerate(stmt):
            if tok.kind == "punct" and tok.text == "(" and j > 0:
                prev = stmt[j - 1]
                if prev.kind == "id" and prev.text not in ("DBTF_GUARDED_BY",
                                                           "GUARDED_BY"):
                    # function declaration (or macro-annotated method)
                    name = None
                    break
            if tok.kind == "punct" and tok.text in ("=", "{", "[", ";"):
                name = stmt[j - 1].text if (j > 0 and
                                            stmt[j - 1].kind == "id") else None
                break
            if tok.kind == "id" and tok.text in ("DBTF_GUARDED_BY",
                                                 "GUARDED_BY"):
                name = stmt[j - 1].text if (j > 0 and
                                            stmt[j - 1].kind == "id") else None
                break
        if name and name not in ("const", "constexpr", "static", "mutable"):
            decl_text = " ".join(tok.text for tok in stmt)
            members.append((name, first.line, decl_text))
    return members


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    rel: str                  # path relative to repo root, posix
    text: str
    tokens: list[Token] = field(default_factory=list)
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.tokens = lex(self.text)
        self.suppressions = collect_suppressions(self.text)

    def suppressed(self, line: int, rule: str) -> bool:
        return rule in self.suppressions.get(line, set())


# ---------------------------------------------------------------------------
# Rule 1: discarded-status
# ---------------------------------------------------------------------------

STATUS_TYPES = {"Status", "Result"}
# Macro statements that consume a Status/Result internally.
CONSUMING_MACROS = {"DBTF_RETURN_IF_ERROR", "DBTF_ASSIGN_OR_RETURN",
                    "DBTF_IGNORE_ERROR", "DBTF_CHECK", "DBTF_DCHECK",
                    "DBTF_CHECK_OK", "ASSERT_OK", "EXPECT_OK"}


def collect_status_returning(files: list[SourceFile]) -> set[str]:
    """Names declared *somewhere* with a Status/Result return type, minus
    names also declared with any other return type (overload ambiguity would
    make statement-position flagging unsound)."""
    status_names: set[str] = set()
    other_names: set[str] = set()
    for sf in files:
        toks = sf.tokens
        for i, t in enumerate(toks):
            if t.kind != "punct" or t.text != "(" or i == 0:
                continue
            prev = toks[i - 1]
            if prev.kind != "id" or prev.text in CONTROL_KEYWORDS:
                continue
            # Walk back over 'Class ::' qualifiers to the return type.
            j = i - 2
            while (j >= 1 and toks[j].kind == "punct" and toks[j].text == "::"
                   and toks[j - 1].kind == "id"):
                j -= 2
            if j < 0:
                continue
            # Return type token: identifier, possibly closing a template
            # argument list (Result<T>).
            rt = toks[j]
            if rt.kind == "punct" and rt.text == ">":
                # scan back to the matching '<' and the name before it
                depth = 1
                k = j - 1
                while k >= 0 and depth:
                    if toks[k].kind == "punct":
                        if toks[k].text == ">":
                            depth += 1
                        elif toks[k].text == "<":
                            depth -= 1
                    k -= 1
                rt = toks[k] if k >= 0 else rt
            if rt.kind != "id":
                continue
            name = prev.text
            if rt.text in STATUS_TYPES:
                status_names.add(name)
            elif rt.text not in ("return", "new", "case", "else", "do",
                                 "co_return", "throw", "in", "of"):
                # Only count plausible declarations: the token before the
                # name must look like a type, and the paren must close into
                # a declaration-ish continuation. Cheap filter: the return
                # type starts a statement (preceded by ; } { or pp or
                # nothing) — expression calls rarely do.
                if j == 0 or (toks[j - 1].kind == "punct"
                              and toks[j - 1].text in (";", "{", "}")) or \
                        toks[j - 1].kind == "pp" or \
                        (toks[j - 1].kind == "id"
                         and toks[j - 1].text in ("inline", "static",
                                                  "virtual", "constexpr",
                                                  "explicit", "friend")):
                    other_names.add(name)
    return status_names - other_names


def check_discarded_status(files: list[SourceFile],
                           status_names: set[str]) -> list[Finding]:
    findings = []
    for sf in files:
        for fn in extract_functions(sf.tokens):
            findings.extend(
                _scan_body_for_discards(sf, fn.body, status_names))
    return findings


def _scan_body_for_discards(sf: SourceFile, body: list[Token],
                            status_names: set[str]) -> list[Finding]:
    findings = []
    n = len(body)
    i = 0
    stmt_start = True
    while i < n:
        t = body[i]
        if t.kind == "punct" and t.text in (";", "{", "}"):
            stmt_start = True
            i += 1
            continue
        if t.kind == "pp":
            stmt_start = True
            i += 1
            continue
        if stmt_start and t.kind == "id":
            if t.text in CONSUMING_MACROS or t.text in CONTROL_KEYWORDS:
                stmt_start = False
                i += 1
                continue
            end, called = _parse_postfix_chain(body, i)
            if called is not None and (end < n and body[end].kind == "punct"
                                       and body[end].text == ";"):
                name, name_line = called
                if (name in status_names
                        and not sf.suppressed(name_line, "discarded-status")):
                    findings.append(Finding(
                        sf.rel, name_line, "discarded-status",
                        f"result of '{name}' (returns Status/Result) is "
                        f"discarded; check it, propagate it, or write "
                        f"DBTF_IGNORE_ERROR(...) to drop it on purpose"))
                i = end + 1
                stmt_start = True
                continue
        stmt_start = False
        i += 1
    return findings


def _parse_postfix_chain(tokens: list[Token], start: int):
    """Parses id ( '::' id | '.' id | '->' id | '(' args ')' )* from start.

    Returns (index after chain, (last_called_name, line) | None). The chain
    qualifies only if its LAST element is a call."""
    i = start
    n = len(tokens)
    if tokens[i].kind != "id":
        return start, None
    last_call: tuple[str, int] | None = None
    prev_id = tokens[i]
    i += 1
    while i < n and tokens[i].kind == "punct":
        p = tokens[i].text
        if p in ("::", ".", "->"):
            if i + 1 < n and tokens[i + 1].kind == "id":
                prev_id = tokens[i + 1]
                last_call = None
                i += 2
                continue
            return i, None
        if p == "(":
            close = _match_paren(tokens, i)
            last_call = (prev_id.text, prev_id.line)
            i = close + 1
            continue
        break
    return i, last_call


# ---------------------------------------------------------------------------
# Rule 2: lock-order
# ---------------------------------------------------------------------------

@dataclass
class LockFacts:
    """Per-function lock behavior extracted from its body."""
    acquires: list[tuple[tuple[str, ...], str, int]] = field(
        default_factory=list)   # (held-before, lock, line)
    calls: list[tuple[tuple[str, ...], str, int]] = field(
        default_factory=list)   # (held, callee, line)
    all_locks: set[str] = field(default_factory=set)


def _lock_identity(expr: list[Token], qualifier: str | None) -> str:
    """Canonical name of a mutex expression: 'Class::member_' for a bare
    member, 'obj.member_' for a qualified access."""
    ids = [t.text for t in expr if t.kind == "id"]
    if not ids:
        return "<unknown>"
    if len(ids) == 1:
        return f"{qualifier or '<free>'}::{ids[0]}"
    return ".".join(ids)


def analyze_lock_facts(files: list[SourceFile],
                       prefixes: tuple[str, ...]) -> dict[str, LockFacts]:
    """Extracts MutexLock scopes + calls per function over selected files."""
    facts: dict[str, LockFacts] = {}
    for sf in files:
        if not sf.rel.startswith(prefixes):
            continue
        for fn in extract_functions(sf.tokens):
            key = f"{fn.qualifier}::{fn.name}" if fn.qualifier else fn.name
            fact = facts.setdefault(key, LockFacts())
            _scan_locks(sf, fn, fact)
    return facts


def _scan_locks(sf: SourceFile, fn: Function, fact: LockFacts) -> None:
    body = fn.body
    n = len(body)
    # held: list of (lock_name, brace_depth_at_acquisition)
    held: list[tuple[str, int]] = []
    depth = 0
    i = 0
    while i < n:
        t = body[i]
        if t.kind == "punct":
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                held = [(name, d) for (name, d) in held if d <= depth]
            i += 1
            continue
        if (t.kind == "id" and t.text == "MutexLock"
                and i + 2 < n and body[i + 1].kind == "id"
                and body[i + 2].kind == "punct" and body[i + 2].text == "("):
            close = _match_paren(body, i + 2)
            lock = _lock_identity(body[i + 3:close], fn.qualifier)
            held_now = tuple(name for name, _ in held)
            fact.acquires.append((held_now, lock, t.line))
            fact.all_locks.add(lock)
            held.append((lock, depth))
            i = close + 1
            continue
        # Method/function calls made while holding a lock (for one-level
        # call-graph propagation). Constructor-style 'Type var(' is filtered
        # by requiring the name not be directly preceded by another id.
        if (held and t.kind == "id" and t.text not in CONTROL_KEYWORDS
                and t.text != "MutexLock"
                and i + 1 < n and body[i + 1].kind == "punct"
                and body[i + 1].text == "("
                and not (i > 0 and body[i - 1].kind == "id")):
            callee = t.text
            if i >= 2 and body[i - 1].text == "::" and body[i - 2].kind == "id":
                callee = f"{body[i - 2].text}::{t.text}"
            fact.calls.append((tuple(name for name, _ in held), callee,
                               t.line))
        i += 1


def check_lock_order(files: list[SourceFile],
                     prefixes: tuple[str, ...]) -> list[Finding]:
    facts = analyze_lock_facts(files, prefixes)

    # Transitive lock set per function (which locks can a call into this
    # function acquire), via memoized DFS over the name-matched call graph.
    by_name: dict[str, list[str]] = {}
    for key in facts:
        by_name.setdefault(key.split("::")[-1], []).append(key)

    closure: dict[str, set[str]] = {}

    def locks_of(key: str, stack: frozenset[str]) -> set[str]:
        if key in closure:
            return closure[key]
        if key in stack:
            return set()
        fact = facts[key]
        out = set(fact.all_locks)
        for _, callee, _ in fact.calls:
            names = by_name.get(callee.split("::")[-1], [])
            for target in names:
                out |= locks_of(target, stack | {key})
        closure[key] = out
        return out

    # Edge list: held -> acquired, with a witness (function, line).
    edges: dict[tuple[str, str], tuple[str, int]] = {}
    for key, fact in facts.items():
        for held, lock, line in fact.acquires:
            for h in held:
                if h != lock:
                    edges.setdefault((h, lock), (key, line))
        for held, callee, line in fact.calls:
            if not held:
                continue
            for target in by_name.get(callee.split("::")[-1], []):
                if target == key:
                    continue
                for lock in locks_of(target, frozenset({key})):
                    for h in held:
                        if h != lock:
                            edges.setdefault((h, lock),
                                             (f"{key} -> {callee}", line))

    # Cycle detection with witness path.
    graph: dict[str, list[str]] = {}
    for (a, b) in edges:
        graph.setdefault(a, []).append(b)

    findings: list[Finding] = []
    seen_cycles: set[frozenset[str]] = set()
    state: dict[str, int] = {}
    path: list[str] = []

    def dfs(node: str) -> None:
        state[node] = 1
        path.append(node)
        for succ in sorted(graph.get(node, [])):
            if state.get(succ, 0) == 1:
                cycle = path[path.index(succ):] + [succ]
                cyc_key = frozenset(cycle)
                if cyc_key not in seen_cycles:
                    seen_cycles.add(cyc_key)
                    hops = []
                    for a, b in zip(cycle, cycle[1:]):
                        site, line = edges[(a, b)]
                        hops.append(f"{a} -> {b} ({site}:{line})")
                    site, line = edges[(cycle[0], cycle[1])]
                    findings.append(Finding(
                        "src", line, "lock-order",
                        "mutex acquisition cycle: " + "; ".join(hops)
                        + " — a consistent order (or a merged lock) is "
                          "required"))
            elif state.get(succ, 0) == 0:
                dfs(succ)
        path.pop()
        state[node] = 2

    for node in sorted(graph):
        if state.get(node, 0) == 0:
            dfs(node)
    return findings


# ---------------------------------------------------------------------------
# Rules 3a/3b: schema coverage
# ---------------------------------------------------------------------------

def _struct_fields(sf: SourceFile, struct_name: str) -> list[tuple[str, int]]:
    for cls in extract_classes(sf.tokens):
        if cls.name == struct_name:
            return [(name, line) for name, line, _ in
                    extract_members(cls.body)]
    return []


def _function_body_tokens(sf: SourceFile, name: str,
                          qualifier: str | None = None) -> list[Token] | None:
    for fn in extract_functions(sf.tokens):
        if fn.name == name and (qualifier is None
                                or fn.qualifier == qualifier):
            return fn.body
    return None


def _member_tokens(body: list[Token]) -> set[str]:
    """Identifiers appearing as member accesses (after '.', '->') or as
    designated initializers / bare identifiers — the superset is fine for
    coverage checking."""
    return {t.text for t in body if t.kind == "id"}


def check_ckpt_coverage(by_rel: dict[str, SourceFile]) -> list[Finding]:
    header = by_rel.get("src/ckpt/checkpoint.h")
    if header is None:
        return []
    findings: list[Finding] = []

    consumers = []  # (what, fields-must-appear-in, description)
    session = by_rel.get("src/dbtf/session.cc")
    fmt = by_rel.get("src/ckpt/format.cc")
    if session is not None:
        build = _function_body_tokens(session, "BuildCheckpoint", "Session")
        restore = _function_body_tokens(session, "RestoreFromCheckpoint",
                                        "Session")
        if build is None:
            findings.append(Finding(
                "src/dbtf/session.cc", 1, "ckpt-coverage",
                "Session::BuildCheckpoint not found — the ckpt-coverage "
                "rule needs it to prove every field is captured"))
        else:
            consumers.append((_member_tokens(build),
                              "Session::BuildCheckpoint (field never "
                              "written into the snapshot)"))
        if restore is None:
            findings.append(Finding(
                "src/dbtf/session.cc", 1, "ckpt-coverage",
                "Session::RestoreFromCheckpoint not found — the "
                "ckpt-coverage rule needs it to prove every field is "
                "consumed on resume"))
        else:
            consumers.append((_member_tokens(restore),
                              "Session::RestoreFromCheckpoint (field never "
                              "read on resume)"))
    if fmt is not None:
        ser_tokens: set[str] = set()
        par_tokens: set[str] = set()
        for fn in extract_functions(fmt.tokens):
            if fn.name.startswith("Serialize"):
                ser_tokens |= _member_tokens(fn.body)
            elif fn.name.startswith("Parse"):
                par_tokens |= _member_tokens(fn.body)
        consumers.append((ser_tokens,
                          "any ckpt_format::Serialize* blob codec (field "
                          "never serialized — add it to a blob and bump "
                          "kFormatVersion)"))
        consumers.append((par_tokens,
                          "any ckpt_format::Parse* blob codec (field never "
                          "parsed — a snapshot would restore it to its "
                          "default)"))

    for struct in ("CheckpointState", "FactorShadowSnapshot"):
        for fld, line in _struct_fields(header, struct):
            if header.suppressed(line, "ckpt-coverage"):
                continue
            for tokens, description in consumers:
                if fld not in tokens:
                    findings.append(Finding(
                        "src/ckpt/checkpoint.h", line, "ckpt-coverage",
                        f"{struct}::{fld} is not referenced by "
                        f"{description}"))
    return findings


# Messages whose codecs live in wire.cc under Encode<Name>/Decode<Name>.
WIRE_MESSAGE_SUFFIXES = ("", "Request", "Response")


def check_wire_coverage(by_rel: dict[str, SourceFile]) -> list[Finding]:
    header = by_rel.get("src/dist/messages.h")
    wire = by_rel.get("src/dist/transport/wire.cc")
    if header is None or wire is None:
        return []
    findings: list[Finding] = []
    wire_functions = {fn.name: fn for fn in extract_functions(wire.tokens)}

    for cls in extract_classes(header.tokens):
        fields = extract_members(cls.body)
        if not fields:
            continue
        encode = wire_functions.get(f"Encode{cls.name}")
        decode = wire_functions.get(f"Decode{cls.name}")
        if encode is None or decode is None:
            findings.append(Finding(
                "src/dist/messages.h", cls.line, "wire-coverage",
                f"message {cls.name} has no "
                f"{'Encode' if encode is None else 'Decode'}{cls.name} in "
                f"src/dist/transport/wire.cc — every wire message needs "
                f"both codecs"))
            continue
        enc_tokens = _member_tokens(encode.body)
        dec_tokens = _member_tokens(decode.body)
        for fld, line, _ in fields:
            if header.suppressed(line, "wire-coverage"):
                continue
            if fld not in enc_tokens:
                findings.append(Finding(
                    "src/dist/messages.h", line, "wire-coverage",
                    f"{cls.name}::{fld} is never encoded by "
                    f"Encode{cls.name} — the socket transport would drop "
                    f"it (add it to the codec and bump kWireVersion)"))
            if fld not in dec_tokens:
                findings.append(Finding(
                    "src/dist/messages.h", line, "wire-coverage",
                    f"{cls.name}::{fld} is never decoded by "
                    f"Decode{cls.name} — a decoded message would hold the "
                    f"field's default instead of the sender's value"))
    return findings


# ---------------------------------------------------------------------------
# Rule 4: guarded-by
# ---------------------------------------------------------------------------

MUTEX_TYPES = {"Mutex"}
MUTATING_METHODS = {"push_back", "emplace_back", "pop_back", "clear",
                    "resize", "insert", "erase", "assign", "push", "pop",
                    "emplace", "swap", "reset", "reserve"}
ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=",
              ">>=", "++", "--"}


@dataclass
class GuardClass:
    name: str
    mutexes: set[str]
    members: dict[str, tuple[int, bool]]  # name -> (line, annotated)
    file_rel: str


def collect_guard_classes(files: list[SourceFile]) -> dict[str, GuardClass]:
    out: dict[str, GuardClass] = {}
    for sf in files:
        for cls in extract_classes(sf.tokens):
            mutexes: set[str] = set()
            members: dict[str, tuple[int, bool]] = {}
            for name, line, decl in extract_members(cls.body):
                toks = decl.split()
                if any(t in MUTEX_TYPES for t in toks):
                    mutexes.add(name)
                    continue
                annotated = "DBTF_GUARDED_BY" in decl or "GUARDED_BY" in decl
                atomic = "atomic" in decl
                const = toks and toks[0] in ("const", "constexpr", "static")
                if not atomic and not const:
                    members[name] = (line, annotated)
            if mutexes:
                out[cls.name] = GuardClass(cls.name, mutexes, members, sf.rel)
    return out


def check_guarded_by(files: list[SourceFile]) -> list[Finding]:
    classes = collect_guard_classes(files)
    findings: list[Finding] = []
    flagged: set[tuple[str, str]] = set()
    for sf in files:
        for fn in extract_functions(sf.tokens):
            gc = classes.get(fn.qualifier or "")
            if gc is None:
                continue
            for member, line in _mutations_under_lock(fn, gc):
                info = gc.members.get(member)
                if info is None:
                    continue
                decl_line, annotated = info
                if annotated or (gc.name, member) in flagged:
                    continue
                decl_file = next((f for f in files if f.rel == gc.file_rel),
                                 None)
                if decl_file and decl_file.suppressed(decl_line,
                                                      "guarded-by"):
                    continue
                flagged.add((gc.name, member))
                findings.append(Finding(
                    gc.file_rel, decl_line, "guarded-by",
                    f"{gc.name}::{member} is mutated under MutexLock "
                    f"({sf.rel}:{line}) but carries no DBTF_GUARDED_BY "
                    f"annotation — Clang's thread-safety analysis cannot "
                    f"check unannotated members"))
    return findings


def _mutations_under_lock(fn: Function,
                          gc: GuardClass) -> list[tuple[str, int]]:
    """(member, line) pairs mutated while a MutexLock on one of gc's
    mutexes is in scope inside fn's body."""
    body = fn.body
    n = len(body)
    out = []
    held_depths: list[int] = []
    depth = 0
    i = 0
    while i < n:
        t = body[i]
        if t.kind == "punct":
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                held_depths = [d for d in held_depths if d <= depth]
            i += 1
            continue
        if (t.kind == "id" and t.text == "MutexLock"
                and i + 2 < n and body[i + 1].kind == "id"
                and body[i + 2].kind == "punct" and body[i + 2].text == "("):
            close = _match_paren(body, i + 2)
            ids = [tok.text for tok in body[i + 3:close] if tok.kind == "id"]
            if ids and ids[-1] in gc.mutexes:
                held_depths.append(depth)
            i = close + 1
            continue
        if held_depths and t.kind == "id" and t.text in gc.members:
            # Bare member access only (not obj.member of another object).
            prev_ok = not (i > 0 and body[i - 1].kind == "punct"
                           and body[i - 1].text in (".", "->"))
            if i > 0 and body[i - 1].kind == "punct" \
                    and body[i - 1].text == "::":
                prev_ok = False
            if (i >= 2 and body[i - 1].kind == "punct"
                    and body[i - 1].text in (".", "->")
                    and body[i - 2].kind == "id"
                    and body[i - 2].text == "this"):
                prev_ok = True
            if prev_ok and i + 1 < n:
                nxt = body[i + 1]
                mutated = False
                if nxt.kind == "punct" and nxt.text in ASSIGN_OPS:
                    mutated = nxt.text != "=" or not (
                        i + 2 < n and body[i + 2].kind == "punct"
                        and body[i + 2].text == "=")
                elif (nxt.kind == "punct" and nxt.text in (".", "->")
                      and i + 3 < n and body[i + 2].kind == "id"
                      and body[i + 2].text in MUTATING_METHODS
                      and body[i + 3].kind == "punct"
                      and body[i + 3].text == "("):
                    mutated = True
                elif (i > 0 and body[i - 1].kind == "punct"
                      and body[i - 1].text in ("++", "--")):
                    mutated = True
                if mutated:
                    out.append((t.text, t.line))
        i += 1
    return out


# ---------------------------------------------------------------------------
# Rule 5: kernel-confinement
# ---------------------------------------------------------------------------

# The only places allowed to iterate BitWord arrays by hand: the kernel
# backends themselves, the word-level primitives header, and the span header
# (whose ForEachSetBit is the one sanctioned scalar scan).
KERNEL_EXEMPT_PREFIXES = ("src/common/kernels/",)
KERNEL_EXEMPT_FILES = {"src/common/bitops.h", "src/common/bitspan.h"}

# Operators that turn a subscripted word into word-level Boolean arithmetic.
KERNEL_BITWISE_AFTER = {"&", "|", "^", "&=", "|=", "^=", "<<", ">>",
                        "<<=", ">>="}
KERNEL_BITWISE_BEFORE = {"&", "|", "^", "~"}

# Tokens skipped between 'BitWord' and the declared identifier: covers
# 'const BitWord* w', 'std::vector<BitWord>& rows', 'unique_ptr<BitWord[]>'.
_BITWORD_DECL_SKIP = {"*", "&", ">", "[", "]"}


def _match_bracket(tokens: list[Token], open_index: int) -> int:
    depth = 0
    for i in range(open_index, len(tokens)):
        t = tokens[i]
        if t.kind == "punct":
            if t.text == "[":
                depth += 1
            elif t.text == "]":
                depth -= 1
                if depth == 0:
                    return i
    return len(tokens) - 1


def _bitword_identifiers(tokens: list[Token]) -> set[str]:
    """Identifiers declared with BitWord in their type within this file:
    'const BitWord* w', 'std::vector<BitWord> row', 'BitWord mask',
    'std::unique_ptr<BitWord[]> table' — parameters, locals, and members
    alike. Over-approximating is fine: flagging additionally requires a
    subscript combined with a bitwise operator inside a loop."""
    out: set[str] = set()
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "id" or t.text != "BitWord":
            continue
        j = i + 1
        while j < n and ((tokens[j].kind == "punct"
                          and tokens[j].text in _BITWORD_DECL_SKIP)
                         or (tokens[j].kind == "id"
                             and tokens[j].text == "const")):
            j += 1
        if j < n and tokens[j].kind == "id" and tokens[j].text != "BitWord":
            out.add(tokens[j].text)
    return out


def _loop_ranges(tokens: list[Token]) -> list[tuple[int, int]]:
    """Inclusive token index ranges covered by for/while headers and bodies.
    Nested loops each contribute their own range; overlap is harmless."""
    ranges: list[tuple[int, int]] = []
    n = len(tokens)
    for i, t in enumerate(tokens):
        if not (t.kind == "id" and t.text in ("for", "while")
                and i + 1 < n and tokens[i + 1].kind == "punct"
                and tokens[i + 1].text == "("):
            continue
        close = _match_paren(tokens, i + 1)
        j = close + 1
        if j < n and tokens[j].kind == "punct" and tokens[j].text == "{":
            end = _match_brace(tokens, j)
        else:  # single-statement body: scan to ';' skipping nested parens
            end = j
            while end < n:
                tk = tokens[end]
                if tk.kind == "punct":
                    if tk.text == "(":
                        end = _match_paren(tokens, end)
                    elif tk.text == ";":
                        break
                end += 1
        ranges.append((i, min(end, n - 1)))
    return ranges


def _scan_kernel_confinement(sf: SourceFile) -> list[Finding]:
    """Both kernel-confinement idioms in one file (exemptions NOT applied
    here — the caller filters paths, so the self-test can prove the scan
    trips on the kernel sources themselves)."""
    toks = sf.tokens
    n = len(toks)
    findings: list[Finding] = []
    for i, t in enumerate(toks):
        if (t.kind == "id" and t.text == "popcount"
                and i >= 2 and toks[i - 1].kind == "punct"
                and toks[i - 1].text == "::" and toks[i - 2].kind == "id"
                and toks[i - 2].text == "std"
                and not sf.suppressed(t.line, "kernel-confinement")):
            findings.append(Finding(
                sf.rel, t.line, "kernel-confinement",
                "std::popcount outside src/common/kernels/ — go through "
                "the dispatch table (Kernels().popcount / xor_popcount / "
                "and_popcount over a BitSpan) so every backend stays "
                "bit-for-bit identical to the portable oracle"))
    names = _bitword_identifiers(toks)
    if not names:
        return findings
    seen_lines: set[int] = set()
    for start, end in _loop_ranges(toks):
        i = start
        while i <= end and i < n:
            t = toks[i]
            if not (t.kind == "id" and t.text in names and i + 1 < n
                    and toks[i + 1].kind == "punct"
                    and toks[i + 1].text == "["):
                i += 1
                continue
            close = _match_bracket(toks, i + 1)
            after = toks[close + 1] if close + 1 < n else None
            before = toks[i - 1] if i > 0 else None
            hit = (after is not None and after.kind == "punct"
                   and after.text in KERNEL_BITWISE_AFTER)
            if (not hit and before is not None and before.kind == "punct"
                    and before.text in KERNEL_BITWISE_BEFORE):
                # '&w[i]' as address-of (after '(', ',', '=', ...) is not
                # word arithmetic; binary '&' follows a value token.
                if before.text != "&" or (
                        i >= 2 and (toks[i - 2].kind in ("id", "num")
                                    or toks[i - 2].text in (")", "]"))):
                    hit = True
            if (not hit and before is not None and before.kind == "punct"
                    and before.text == "(" and i >= 2
                    and toks[i - 2].kind == "id"
                    and toks[i - 2].text == "PopCount"):
                hit = True  # the bitops.h shim inside a loop is the idiom
            if (hit and t.line not in seen_lines
                    and not sf.suppressed(t.line, "kernel-confinement")):
                seen_lines.add(t.line)
                findings.append(Finding(
                    sf.rel, t.line, "kernel-confinement",
                    f"raw word loop over BitWord '{t.text}' — hand-rolled "
                    f"word iteration is confined to src/common/kernels/; "
                    f"wrap the data in a BitSpan and use the BoolKernels "
                    f"ops (or ForEachSetBit) instead"))
            i = close + 1
    return findings


def check_kernel_confinement(files: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    for sf in files:
        if not sf.rel.startswith("src/"):
            continue
        if sf.rel.startswith(KERNEL_EXEMPT_PREFIXES) \
                or sf.rel in KERNEL_EXEMPT_FILES:
            continue
        findings.extend(_scan_kernel_confinement(sf))
    return findings


# ---------------------------------------------------------------------------
# libclang backend (optional; replaces the internal discarded-status pass)
# ---------------------------------------------------------------------------

def try_libclang_discarded(root: Path, compdb_dir: Path) -> \
        list[Finding] | None:
    """Re-derives the discarded-status rule from the clang AST when the
    python bindings and a libclang shared object are installed. Returns None
    (degrade to the internal backend) when anything is missing — never a
    weaker check."""
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return None
    try:
        index = cindex.Index.create()
        compdb = cindex.CompilationDatabase.fromDirectory(str(compdb_dir))
    except Exception:
        return None

    findings: list[Finding] = []
    try:
        commands = list(compdb.getAllCompileCommands())
        for cmd in commands:
            path = Path(cmd.filename)
            try:
                rel = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                continue
            if not rel.startswith(("src/", "tests/")):
                continue
            args = [a for a in list(cmd.arguments)[1:]
                    if a not in (str(path), "-c", "-o")]
            # Drop the object-file operand the '-o' used to take.
            cleaned = []
            skip = False
            for a in args:
                if skip:
                    skip = False
                    continue
                if a == "-o":
                    skip = True
                    continue
                cleaned.append(a)
            tu = index.parse(str(path), args=cleaned)
            for cursor in tu.cursor.walk_preorder():
                if cursor.kind != cindex.CursorKind.CALL_EXPR:
                    continue
                if cursor.location.file is None or \
                        Path(str(cursor.location.file)) != path:
                    continue
                rtype = cursor.type.spelling
                if not (rtype.endswith("Status")
                        or "Result<" in rtype):
                    continue
                parent = cursor.semantic_parent
                # Heuristic parent check: clang exposes unused results via
                # -Wunused-result diagnostics; collect those instead.
            for diag in tu.diagnostics:
                if "ignoring return value" in diag.spelling and \
                        diag.location.file is not None and \
                        Path(str(diag.location.file)) == path:
                    findings.append(Finding(
                        rel, diag.location.line, "discarded-status",
                        "clang AST: " + diag.spelling))
    except Exception:
        return None
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

LOCK_ORDER_PREFIXES = ("src/dist/", "src/ckpt/", "src/dbtf/")


def load_files(root: Path) -> list[SourceFile]:
    files = []
    for sub in ("src", "tests"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cc") or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            files.append(SourceFile(rel, path.read_text(encoding="utf-8")))
    return files


def analyze(root: Path, rules: list[str], backend: str) -> list[Finding]:
    files = load_files(root)
    by_rel = {sf.rel: sf for sf in files}
    findings: list[Finding] = []

    if "discarded-status" in rules:
        clang_findings = None
        if backend in ("auto", "libclang"):
            compdb = root / "build"
            if (compdb / "compile_commands.json").is_file():
                clang_findings = try_libclang_discarded(root, compdb)
            if clang_findings is None and backend == "libclang":
                print("dbtf_analyze: libclang backend requested but "
                      "clang.cindex/libclang is unavailable", file=sys.stderr)
                raise SystemExit(2)
        status_names = collect_status_returning(files)
        internal = check_discarded_status(files, status_names)
        if clang_findings is not None:
            # The AST pass is authoritative where it ran; keep internal
            # findings too (macros/templates clang may have folded away),
            # deduplicated by site.
            seen = {(f.path, f.line) for f in internal}
            findings.extend(internal)
            findings.extend(f for f in clang_findings
                            if (f.path, f.line) not in seen)
        else:
            findings.extend(internal)
    if "lock-order" in rules:
        findings.extend(check_lock_order(files, LOCK_ORDER_PREFIXES))
    if "ckpt-coverage" in rules:
        findings.extend(check_ckpt_coverage(by_rel))
    if "wire-coverage" in rules:
        findings.extend(check_wire_coverage(by_rel))
    if "guarded-by" in rules:
        findings.extend(check_guarded_by(files))
    if "kernel-confinement" in rules:
        findings.extend(check_kernel_confinement(files))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parent.parent,
        help="repository root containing src/ (default: this repo)")
    parser.add_argument(
        "--rule", action="append", choices=RULES, dest="rules",
        help="run only the named rule (repeatable; default: all)")
    parser.add_argument(
        "--backend", choices=("auto", "internal", "libclang"),
        default="auto",
        help="auto: libclang for discarded-status when importable, internal "
             "otherwise; internal: never touch libclang; libclang: require "
             "it (exit 2 when missing)")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"dbtf_analyze: no src/ under {root}", file=sys.stderr)
        return 2
    rules = args.rules or list(RULES)
    findings = analyze(root, rules, args.backend)
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        print(finding.render())
    if findings:
        print(f"dbtf_analyze: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
