// Fallback driver for toolchains without libFuzzer (-fsanitize=fuzzer is a
// clang feature; the default GCC build links this instead). Replays every
// input file named on the command line — the committed corpus and crash
// regressions — through LLVMFuzzerTestOneInput, which is exactly what a
// libFuzzer binary does with file arguments. No coverage feedback, but the
// regression surface (every past finding must stay fixed) is identical, so
// the fuzz_*_replay ctest cases run in both build modes.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

bool ReplayFile(const char* path) {
  std::FILE* file = std::fopen(path, "rb");
  if (file == nullptr) {
    std::fprintf(stderr, "replay: cannot open %s\n", path);
    return false;
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buffer[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  const bool read_failed = std::ferror(file) != 0;
  std::fclose(file);
  if (read_failed) {
    std::fprintf(stderr, "replay: cannot read %s\n", path);
    return false;
  }
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    if (!ReplayFile(argv[i])) return 1;
    ++replayed;
  }
  std::fprintf(stderr, "replay: %d input(s) OK\n", replayed);
  return 0;
}
