// Fuzz target: the ByteReader primitives (src/common/serde.cc) under an
// adversarial op stream. The input's first half is interpreted as a
// sequence of read operations, the rest is the buffer being read — so the
// fuzzer explores interleavings of typed reads, raw reads, and end checks
// against arbitrary buffer contents and truncation points. Every operation
// must fail with a Status on underflow, never read out of bounds (ASan
// enforces "never").

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "common/status.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 2) return 0;
  // First byte picks the split between op stream and payload.
  const std::size_t ops_len = 1 + data[0] % (size - 1);
  const std::uint8_t* ops = data + 1;
  const std::uint8_t* payload = data + 1 + (ops_len - 1);
  const std::size_t payload_len = size - 1 - (ops_len - 1);

  dbtf::ByteReader reader(payload, payload_len);
  for (std::size_t i = 0; i + 1 < ops_len; ++i) {
    switch (ops[i] % 8) {
      case 0: (void)reader.ReadU8(); break;
      case 1: (void)reader.ReadU32(); break;
      case 2: (void)reader.ReadU64(); break;
      case 3: (void)reader.ReadI64(); break;
      case 4: (void)reader.ReadDouble(); break;
      case 5: (void)reader.ReadString(); break;
      case 6: {
        std::uint8_t sink[16];
        (void)reader.ReadBytes(sink, ops[i] % sizeof(sink));
        break;
      }
      case 7: {
        (void)reader.ExpectEnd();
        // remaining()/offset() must stay consistent with the buffer.
        if (reader.offset() + reader.remaining() != payload_len) {
          __builtin_trap();
        }
        break;
      }
    }
  }
  return 0;
}
