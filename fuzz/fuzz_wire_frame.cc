// Fuzz target: the wire-frame decoder and every message payload codec
// behind it (src/dist/transport/wire.cc). The input is one candidate frame
// buffer as it would arrive from a peer socket — the decoder must reject
// truncation, corruption, and hostile length fields with a Status, never
// with UB (the ASan/UBSan CI leg enforces "never").
//
// On a successful decode the harness re-encodes the message and decodes the
// re-encoding, aborting on failure: encode -> decode -> encode must be a
// fixed point (the byte-stability the transport documents).
//
// Build modes: a real libFuzzer binary under clang (-fsanitize=fuzzer);
// under GCC the same TestOneInput links against replay_main.cc and replays
// the committed corpus + crash regressions as a ctest case.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "dist/messages.h"
#include "dist/transport/wire.h"

namespace {

void Require(bool ok) {
  if (!ok) std::abort();  // a failed round-trip is a findings-grade bug
}

template <typename Message, typename Encode, typename Decode>
void Roundtrip(const Message& msg, Encode encode, Decode decode) {
  dbtf::ByteWriter writer;
  encode(msg, &writer);
  dbtf::ByteReader reader(writer.bytes());
  auto again = decode(&reader);
  Require(again.ok());
  Require(reader.ExpectEnd().ok());
}

void DecodePayload(dbtf::WireKind kind,
                   const std::vector<std::uint8_t>& payload) {
  dbtf::ByteReader reader(payload);
  switch (kind) {
    case dbtf::WireKind::kFactorDelta: {
      auto msg = dbtf::DecodeFactorDelta(&reader);
      if (msg.ok()) {
        Roundtrip(msg.value(), dbtf::EncodeFactorDelta,
                  dbtf::DecodeFactorDelta);
      }
      break;
    }
    case dbtf::WireKind::kRunUpdateColumn: {
      auto msg = dbtf::DecodeRunUpdateColumn(&reader);
      if (msg.ok()) {
        Roundtrip(msg.value(), dbtf::EncodeRunUpdateColumn,
                  dbtf::DecodeRunUpdateColumn);
      }
      break;
    }
    case dbtf::WireKind::kCollectErrors: {
      auto msg = dbtf::DecodeCollectErrorsRequest(&reader);
      if (msg.ok()) {
        Roundtrip(msg.value(), dbtf::EncodeCollectErrorsRequest,
                  dbtf::DecodeCollectErrorsRequest);
      }
      break;
    }
    case dbtf::WireKind::kStorePartition: {
      auto msg = dbtf::DecodeStorePartitionRequest(&reader);
      if (msg.ok()) {
        Roundtrip(msg.value(), dbtf::EncodeStorePartitionRequest,
                  dbtf::DecodeStorePartitionRequest);
      }
      break;
    }
    case dbtf::WireKind::kListPartitions: {
      auto mode = dbtf::DecodeListPartitionsRequest(&reader);
      (void)mode;
      break;
    }
    case dbtf::WireKind::kShutdown:
      break;  // empty payload by contract; stray bytes must not crash
    case dbtf::WireKind::kQuery: {
      auto msg = dbtf::DecodeQueryRequest(&reader);
      if (msg.ok()) {
        Roundtrip(msg.value(), dbtf::EncodeQueryRequest,
                  dbtf::DecodeQueryRequest);
      }
      break;
    }
    case dbtf::WireKind::kReply: {
      auto reply = dbtf::DecodeReply(&reader);
      if (reply.ok()) {
        // A reply body, when present, is an encoded CollectErrorsResponse,
        // ListPartitionsResponse, or QueryResponse; every decoder must
        // survive every body.
        dbtf::ByteReader body(reply.value().body);
        auto response = dbtf::DecodeCollectErrorsResponse(&body);
        if (response.ok()) {
          Roundtrip(response.value(), dbtf::EncodeCollectErrorsResponse,
                    dbtf::DecodeCollectErrorsResponse);
        }
        dbtf::ByteReader body2(reply.value().body);
        auto indexes = dbtf::DecodeListPartitionsResponse(&body2);
        (void)indexes;
        dbtf::ByteReader body3(reply.value().body);
        auto answer = dbtf::DecodeQueryResponse(&body3);
        if (answer.ok()) {
          Roundtrip(answer.value(), dbtf::EncodeQueryResponse,
                    dbtf::DecodeQueryResponse);
        }
      }
      break;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);

  // Header-only parse first (the socket loop's read path).
  auto header = dbtf::ParseFrameHeader(bytes.data(), bytes.size());
  (void)header;

  auto frame = dbtf::DecodeFrame(bytes);
  if (frame.ok()) {
    DecodePayload(frame.value().kind, frame.value().payload);
  }
  return 0;
}
