// Seed-corpus generator: writes one representative encoded input per wire
// message kind, serde stream, and checkpoint blob into the per-target
// corpus directories, using the *real* encoders — so every seed is a valid
// deep input that puts the fuzzer past the magic/CRC guards from exec one.
//
//   corpus_tool <fuzz-dir>     writes <fuzz-dir>/corpus/<target>/<name>.bin
//
// The generated files are committed (fuzz/corpus/); re-run this tool and
// re-commit when an encoding changes (which also means bumping kWireVersion
// or kFormatVersion).

#include <cstdint>
#include <cstdio>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/format.h"
#include "common/serde.h"
#include "dbtf/partition.h"
#include "dist/messages.h"
#include "dist/transport/wire.h"
#include "tensor/bit_matrix.h"

namespace dbtf {
namespace {

bool WriteFile(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "corpus_tool: cannot open %s\n", path.c_str());
    return false;
  }
  const bool ok =
      b.empty() || std::fwrite(b.data(), 1, b.size(), file) == b.size();
  std::fclose(file);
  if (!ok) std::fprintf(stderr, "corpus_tool: short write %s\n", path.c_str());
  return ok;
}

BitMatrix Checkerboard(std::int64_t rows, std::int64_t cols) {
  BitMatrix m(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      m.Set(r, c, ((r + c) & 1) != 0);
    }
  }
  return m;
}

MatrixDelta FullDelta() {
  MatrixDelta d;
  d.slot = 1;
  d.generation = 7;
  d.full = true;
  d.dense = Checkerboard(4, 6);
  d.rows = 4;
  d.cols = 6;
  return d;
}

MatrixDelta ColumnDelta() {
  MatrixDelta d;
  d.slot = 2;
  d.generation = 9;
  d.base_generation = 7;
  d.full = false;
  d.rows = 4;
  d.cols = 6;
  d.columns = {1, 4};
  d.column_bits = {{0x5ULL}, {0xAULL}};
  return d;
}

std::vector<std::uint8_t> Frame(WireKind kind, const ByteWriter& payload) {
  return EncodeFrame(kind, payload);
}

bool WriteWireFrameSeeds(const std::string& dir) {
  bool ok = true;

  {
    FactorDelta msg;
    msg.mode = Mode::kTwo;
    msg.rows = 16;
    msg.mf_slot = 0;
    msg.ms_slot = 1;
    msg.cache_group_size = 2;
    msg.enable_caching = true;
    msg.updates = {FullDelta(), ColumnDelta()};
    ByteWriter w;
    EncodeFactorDelta(msg, &w);
    ok = WriteFile(dir + "/factor_delta.bin",
                   Frame(WireKind::kFactorDelta, w)) && ok;
  }
  {
    RunUpdateColumn msg;
    msg.mode = Mode::kOne;
    msg.column = 3;
    msg.row_masks = {0xF0F0F0F0F0F0F0F0ULL, 0x1ULL};
    msg.rows = 16;
    ByteWriter w;
    EncodeRunUpdateColumn(msg, &w);
    ok = WriteFile(dir + "/run_update_column.bin",
                   Frame(WireKind::kRunUpdateColumn, w)) && ok;
  }
  {
    CollectErrorsRequest msg;
    msg.mode = Mode::kThree;
    msg.rows = 8;
    msg.want_stats = true;
    ByteWriter w;
    EncodeCollectErrorsRequest(msg, &w);
    ok = WriteFile(dir + "/collect_errors.bin",
                   Frame(WireKind::kCollectErrors, w)) && ok;
  }
  {
    StorePartitionRequest msg;
    msg.mode = Mode::kOne;
    msg.index = 2;
    msg.shape = UnfoldShape{8, 2, 64};
    msg.partition.col_begin = 64;
    msg.partition.col_end = 128;
    PartitionBlock block;
    block.block_index = 1;
    block.within_begin = 0;
    block.within_end = 64;
    block.word_begin = 0;
    block.last_word_mask = ~0ULL;
    block.type = BlockType::kFullPvm;
    block.rows = Checkerboard(8, 64);
    block.row_nnz.assign(8, 32);
    msg.partition.blocks.push_back(std::move(block));
    ByteWriter w;
    EncodeStorePartitionRequest(msg, &w);
    ok = WriteFile(dir + "/store_partition.bin",
                   Frame(WireKind::kStorePartition, w)) && ok;
  }
  {
    ByteWriter w;
    EncodeListPartitionsRequest(Mode::kTwo, &w);
    ok = WriteFile(dir + "/list_partitions.bin",
                   Frame(WireKind::kListPartitions, w)) && ok;
  }
  {
    ByteWriter empty;
    ok = WriteFile(dir + "/shutdown.bin",
                   Frame(WireKind::kShutdown, empty)) && ok;
  }
  {
    CollectErrorsResponse response;
    response.totals0 = {3, 1, 4, 1, 5};
    response.totals1 = {9, 2, 6, 5, 3};
    response.wire_bytes = 80;
    response.cache_entries = 12;
    response.cache_bytes = 96;
    ByteWriter body;
    EncodeCollectErrorsResponse(response, &body);

    WireReply reply;
    reply.status = Status::OK();
    reply.compute_seconds = 0.125;
    reply.body = body.bytes();
    ByteWriter w;
    EncodeReply(reply, &w);
    ok = WriteFile(dir + "/reply_collect.bin",
                   Frame(WireKind::kReply, w)) && ok;
  }
  {
    WireReply reply;
    reply.status = Status::Unavailable("machine 3 is down");
    ByteWriter w;
    EncodeReply(reply, &w);
    ok = WriteFile(dir + "/reply_error.bin",
                   Frame(WireKind::kReply, w)) && ok;
  }
  {
    QueryRequest msg;
    msg.kind = QueryKind::kMembership;
    msg.id = 41;
    msg.i = 3;
    msg.j = 1;
    msg.k = 4;
    ByteWriter w;
    EncodeQueryRequest(msg, &w);
    ok = WriteFile(dir + "/query_membership.bin",
                   Frame(WireKind::kQuery, w)) && ok;
  }
  {
    QueryRequest msg;
    msg.kind = QueryKind::kFiber;
    msg.id = 42;
    msg.mode = Mode::kTwo;
    msg.k = 2;
    msg.i = 5;
    ByteWriter w;
    EncodeQueryRequest(msg, &w);
    ok = WriteFile(dir + "/query_fiber.bin",
                   Frame(WireKind::kQuery, w)) && ok;
  }
  {
    QueryRequest msg;
    msg.kind = QueryKind::kTopConcepts;
    msg.id = 43;
    msg.mode = Mode::kThree;
    msg.slice_bits = {0x00000000F0F0F0F0ULL};
    msg.slice_len = 32;
    msg.top_r = 4;
    ByteWriter w;
    EncodeQueryRequest(msg, &w);
    ok = WriteFile(dir + "/query_top.bin",
                   Frame(WireKind::kQuery, w)) && ok;
  }
  {
    QueryResponse answer;
    answer.id = 43;
    answer.member = true;
    answer.explain_mask = 0x9;
    answer.fiber_bits = {0x0000000000000FF0ULL};
    answer.fiber_len = 12;
    answer.concept_ids = {0, 3};
    answer.concept_scores = {6, 2};
    answer.generations = {21, 22, 23};  // the codec insists on all three
    ByteWriter body;
    EncodeQueryResponse(answer, &body);

    WireReply reply;
    reply.status = Status::OK();
    reply.compute_seconds = 0.0625;
    reply.body = body.bytes();
    ByteWriter w;
    EncodeReply(reply, &w);
    ok = WriteFile(dir + "/reply_query.bin",
                   Frame(WireKind::kReply, w)) && ok;
  }
  return ok;
}

bool WriteByteReaderSeeds(const std::string& dir) {
  // Layout understood by fuzz_byte_reader.cc: byte 0 picks the op/payload
  // split, then ops, then the payload stream (here: one of everything the
  // writer emits, so typed reads line up with typed fields).
  ByteWriter payload;
  payload.WriteU8(0xAB);
  payload.WriteU32(0xDEADBEEFU);
  payload.WriteU64(0x0123456789ABCDEFULL);
  payload.WriteI64(-42);
  payload.WriteDouble(2.5);
  payload.WriteString("seed corpus");

  std::vector<std::uint8_t> seed;
  const std::uint8_t ops[] = {0, 1, 2, 3, 4, 5, 7};
  seed.push_back(static_cast<std::uint8_t>(sizeof(ops) + 1));
  seed.insert(seed.end(), ops, ops + sizeof(ops));
  seed.insert(seed.end(), payload.bytes().begin(), payload.bytes().end());
  return WriteFile(dir + "/typed_stream.bin", seed);
}

bool WriteCkptSeeds(const std::string& dir) {
  namespace fmt = ckpt_format;
  bool ok = true;

  CheckpointState state;
  state.config_fingerprint = 0x1122334455667788ULL;
  state.tensor_fingerprint = 0x99AABBCCDDEEFF00ULL;
  state.iteration = 3;
  state.set_index = 1;
  state.mode_index = 2;
  state.next_column = 5;
  state.columns_done = 4;
  state.rng_state = {1, 2, 3, 4};
  state.a = Checkerboard(4, 3);
  state.b = Checkerboard(5, 3);
  state.c = Checkerboard(6, 3);
  state.has_best = true;
  state.best_a = state.a;
  state.best_b = state.b;
  state.best_c = state.c;
  state.best_error = 17.0;
  state.iteration_errors = {31, 23, 17};
  state.shadows[0].initialized = true;
  state.shadows[0].generation = 11;
  state.shadows[0].content = Checkerboard(4, 3);
  state.dead_machines = {false, true, false};
  state.machine_seconds = {1.5, 0.0, 2.5};
  state.driver_seconds = 0.75;

  ok = WriteFile(dir + "/run.bin", fmt::SerializeRun(state)) && ok;
  ok = WriteFile(dir + "/factors.bin", fmt::SerializeFactors(state)) && ok;
  ok = WriteFile(dir + "/bcast.bin", fmt::SerializeBcast(state)) && ok;
  ok = WriteFile(dir + "/dist.bin", fmt::SerializeDist(state)) && ok;

  fmt::Manifest manifest;
  manifest.sequence = 12;
  const char* const names[] = {fmt::kRunBlob, fmt::kFactorsBlob,
                               fmt::kBcastBlob, fmt::kDistBlob};
  const std::vector<std::uint8_t> blobs[] = {
      fmt::SerializeRun(state), fmt::SerializeFactors(state),
      fmt::SerializeBcast(state), fmt::SerializeDist(state)};
  for (int i = 0; i < 4; ++i) {
    manifest.entries.push_back(
        {names[i], blobs[i].size(), Crc32(blobs[i].data(), blobs[i].size())});
  }
  ok = WriteFile(dir + "/manifest.bin",
                 fmt::SerializeManifest(manifest)) && ok;
  return ok;
}

bool EnsureDir(const std::string& path) {
  return ::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST;
}

int Run(const std::string& fuzz_dir) {
  const std::string corpus = fuzz_dir + "/corpus";
  bool ok = EnsureDir(corpus);
  const std::string wire = corpus + "/fuzz_wire_frame";
  const std::string serde = corpus + "/fuzz_byte_reader";
  const std::string ckpt = corpus + "/fuzz_ckpt_manifest";
  ok = EnsureDir(wire) && EnsureDir(serde) && EnsureDir(ckpt) && ok;
  if (!ok) {
    std::fprintf(stderr, "corpus_tool: cannot create corpus dirs under %s\n",
                 fuzz_dir.c_str());
    return 1;
  }
  ok = WriteWireFrameSeeds(wire);
  ok = WriteByteReaderSeeds(serde) && ok;
  ok = WriteCkptSeeds(ckpt) && ok;
  if (ok) std::fprintf(stderr, "corpus_tool: seeds written under %s\n",
                       corpus.c_str());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace dbtf

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: corpus_tool <fuzz-dir>\n");
    return 2;
  }
  return dbtf::Run(argv[1]);
}
