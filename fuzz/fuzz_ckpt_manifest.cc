// Fuzz target: the checkpoint byte codecs (src/ckpt/format.cc) — the
// manifest parser and the four state-blob parsers — over bytes as they
// would be read back from a (possibly corrupt or torn) snapshot directory.
// Each parser guards with a magic/CRC, so most inputs bounce off cheaply;
// what matters is that hostile counts, sizes, and truncations always fail
// with a Status and never with an allocation blow-up or OOB access.
//
// When ParseManifest accepts an input, the harness re-serializes the parsed
// manifest and parses the re-serialization, aborting on failure or on an
// entry-list mismatch: serialize -> parse must be the identity on valid
// manifests.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/format.h"
#include "common/status.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace fmt = dbtf::ckpt_format;
  const std::vector<std::uint8_t> bytes(data, data + size);

  auto manifest = fmt::ParseManifest(bytes);
  if (manifest.ok()) {
    const std::vector<std::uint8_t> again =
        fmt::SerializeManifest(manifest.value());
    auto reparsed = fmt::ParseManifest(again);
    if (!reparsed.ok() ||
        reparsed.value().sequence != manifest.value().sequence ||
        reparsed.value().entries.size() != manifest.value().entries.size()) {
      std::abort();
    }
  }

  dbtf::CheckpointState state;
  (void)fmt::ParseRun(bytes, &state);
  (void)fmt::ParseFactors(bytes, &state);
  (void)fmt::ParseBcast(bytes, &state);
  (void)fmt::ParseDist(bytes, &state);
  return 0;
}
