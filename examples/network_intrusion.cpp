// Attack-window detection in network traffic — the paper's CAIDA-DDoS
// motivation: a source-IP x destination-IP x time binary tensor of traffic
// events, where DDoS bursts form dense rank-1 blocks.
//
// The example synthesizes bursty attack traffic over background noise,
// factorizes it with DBTF, and reads the attack windows straight off the
// time-mode factor C: the time steps set in column r are the window of
// attack component r, and the A/B columns give the participating sources
// and targets.
//
//   ./examples/network_intrusion

#include <cstdio>
#include <vector>

#include "dbtf/dbtf.h"
#include "generator/workload.h"

int main() {
  using namespace dbtf;

  // Bursty traffic: 128 sources x 128 destinations x 256 time steps.
  DatasetSpec spec;
  spec.name = "ddos-like";
  spec.dim_i = 128;
  spec.dim_j = 128;
  spec.dim_k = 256;
  spec.nnz = 30000;
  spec.kind = WorkloadKind::kBursty;
  auto traffic = GenerateWorkload(spec, 1337);
  if (!traffic.ok()) {
    std::fprintf(stderr, "%s\n", traffic.status().ToString().c_str());
    return 1;
  }
  std::printf("traffic tensor: %lldx%lldx%lld, %lld events\n\n",
              static_cast<long long>(spec.dim_i),
              static_cast<long long>(spec.dim_j),
              static_cast<long long>(spec.dim_k),
              static_cast<long long>(traffic->NumNonZeros()));

  DbtfConfig config;
  config.rank = 6;
  config.max_iterations = 10;
  config.num_initial_sets = 6;
  config.num_partitions = 8;
  config.cluster.num_machines = 8;
  config.seed = 3;
  auto result = Dbtf::Factorize(*traffic, config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("factorized with relative error %.4f\n\n",
              static_cast<double>(result->final_error) /
                  static_cast<double>(traffic->NumNonZeros()));

  // Each component = one traffic pattern. Report its time window (from C)
  // and the size of its source/destination sets (from A and B).
  for (std::int64_t r = 0; r < config.rank; ++r) {
    std::int64_t first = -1;
    std::int64_t last = -1;
    std::int64_t active = 0;
    for (std::int64_t k = 0; k < result->c.rows(); ++k) {
      if (!result->c.Get(k, r)) continue;
      if (first < 0) first = k;
      last = k;
      ++active;
    }
    std::int64_t sources = 0;
    std::int64_t targets = 0;
    for (std::int64_t i = 0; i < result->a.rows(); ++i) {
      if (result->a.Get(i, r)) ++sources;
    }
    for (std::int64_t j = 0; j < result->b.rows(); ++j) {
      if (result->b.Get(j, r)) ++targets;
    }
    if (active == 0) {
      std::printf("component %lld: inactive\n", static_cast<long long>(r));
      continue;
    }
    // A concentrated window with many sources hitting few targets (or the
    // reverse) is the classic DDoS signature.
    const double concentration =
        static_cast<double>(active) / static_cast<double>(last - first + 1);
    std::printf(
        "component %lld: time window [%lld, %lld] (%lld steps, "
        "concentration %.2f), %lld sources -> %lld targets%s\n",
        static_cast<long long>(r), static_cast<long long>(first),
        static_cast<long long>(last), static_cast<long long>(active),
        concentration, static_cast<long long>(sources),
        static_cast<long long>(targets),
        (concentration > 0.5 && sources >= 8) ? "  <== burst" : "");
  }
  return 0;
}
