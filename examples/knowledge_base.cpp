// Latent concept discovery in a knowledge base — the application the paper's
// introduction motivates with subject-relation-object triples such as
// ("Seoul", "is the capital of", "South Korea").
//
// The example synthesizes a knowledge-base tensor with planted concepts
// (groups of subjects connected to groups of objects through groups of
// relations), factorizes it with DBTF, and prints each discovered concept as
// its top subjects / relations / objects. With Boolean factors, "membership
// of entity e in concept r" is simply bit (e, r) of a factor matrix.
//
//   ./examples/knowledge_base

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "dbtf/dbtf.h"
#include "eval/metrics.h"
#include "generator/generator.h"

namespace {

// Human-readable entity names for the synthetic knowledge base.
std::string SubjectName(int i) { return "subject_" + std::to_string(i); }
std::string RelationName(int j) { return "relation_" + std::to_string(j); }
std::string ObjectName(int k) { return "object_" + std::to_string(k); }

void PrintConceptMembers(const dbtf::BitMatrix& factor, std::int64_t concept_id,
                         const char* role,
                         const std::function<std::string(int)>& name,
                         int max_members = 6) {
  std::printf("  %-9s:", role);
  int shown = 0;
  std::int64_t total = 0;
  for (std::int64_t e = 0; e < factor.rows(); ++e) {
    if (!factor.Get(e, concept_id)) continue;
    ++total;
    if (shown < max_members) {
      std::printf(" %s", name(static_cast<int>(e)).c_str());
      ++shown;
    }
  }
  if (total > shown) std::printf(" ... (%lld total)", static_cast<long long>(total));
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace dbtf;

  // Synthetic knowledge base: 120 subjects x 24 relations x 120 objects with
  // 6 planted concepts. Subjects/objects join ~2 concepts on average, each
  // concept uses a couple of relations.
  PlantedSpec spec;
  spec.dim_i = 120;  // subjects
  spec.dim_j = 24;   // relations
  spec.dim_k = 120;  // objects
  spec.rank = 6;
  spec.factor_density = 0.10;
  spec.additive_noise = 0.02;     // spurious triples
  spec.destructive_noise = 0.05;  // missing triples (incomplete KB)
  spec.seed = 404;
  auto kb = GeneratePlanted(spec);
  if (!kb.ok()) {
    std::fprintf(stderr, "%s\n", kb.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "knowledge base: %lld subjects, %lld relations, %lld objects, "
      "%lld triples\n\n",
      static_cast<long long>(kb->tensor.dim_i()),
      static_cast<long long>(kb->tensor.dim_j()),
      static_cast<long long>(kb->tensor.dim_k()),
      static_cast<long long>(kb->tensor.NumNonZeros()));

  DbtfConfig config;
  config.rank = 6;
  config.max_iterations = 12;
  config.num_initial_sets = 6;
  config.num_partitions = 8;
  config.cluster.num_machines = 8;
  config.seed = 7;
  auto result = Dbtf::Factorize(kb->tensor, config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("discovered %lld Boolean concepts (relative error %.4f):\n\n",
              static_cast<long long>(config.rank),
              static_cast<double>(result->final_error) /
                  static_cast<double>(kb->tensor.NumNonZeros()));
  for (std::int64_t r = 0; r < config.rank; ++r) {
    std::printf("concept %lld\n", static_cast<long long>(r));
    PrintConceptMembers(result->a, r, "subjects", SubjectName);
    PrintConceptMembers(result->b, r, "relations", RelationName);
    PrintConceptMembers(result->c, r, "objects", ObjectName);
  }

  auto score = FactorMatchScore(kb->b, result->b);
  if (score.ok()) {
    std::printf(
        "\nrelation-factor match vs planted concepts (Jaccard): %.2f\n",
        *score);
  }
  return 0;
}
