// Link prediction with Boolean tensor factorization — one of the BTF
// applications the paper lists. A temporal friendship tensor
// (user x user x time) has a fraction of its true links hidden; DBTF
// factorizes the observed tensor and the reconstruction predicts the
// held-out links. Precision is compared against a random guesser.
//
//   ./examples/link_prediction

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "dbtf/dbtf.h"
#include "eval/metrics.h"
#include "generator/generator.h"
#include "tensor/boolean_ops.h"

int main() {
  using namespace dbtf;

  // Ground truth: 96 users x 96 users x 32 weeks with 5 latent communities.
  PlantedSpec spec;
  spec.dim_i = 96;
  spec.dim_j = 96;
  spec.dim_k = 32;
  spec.rank = 5;
  spec.factor_density = 0.10;
  spec.seed = 808;
  auto planted = GeneratePlanted(spec);
  if (!planted.ok()) {
    std::fprintf(stderr, "%s\n", planted.status().ToString().c_str());
    return 1;
  }
  const SparseTensor& truth = planted->noise_free;

  // Hide 15% of the links: the observed tensor is what we factorize.
  const double hidden_fraction = 0.15;
  Rng rng(99);
  auto observed =
      SparseTensor::Create(truth.dim_i(), truth.dim_j(), truth.dim_k());
  if (!observed.ok()) return 1;
  std::vector<Coord> held_out;
  for (const Coord& c : truth.entries()) {
    if (rng.NextBool(hidden_fraction)) {
      held_out.push_back(c);
    } else {
      observed->AddUnchecked(c.i, c.j, c.k);
    }
  }
  observed->SortAndDedup();
  std::printf(
      "friendship tensor: %lld links, %zu hidden for evaluation, %lld "
      "observed\n",
      static_cast<long long>(truth.NumNonZeros()), held_out.size(),
      static_cast<long long>(observed->NumNonZeros()));

  DbtfConfig config;
  config.rank = 5;
  config.max_iterations = 12;
  config.num_initial_sets = 8;
  config.num_partitions = 8;
  config.cluster.num_machines = 8;
  config.seed = 21;
  auto result = Dbtf::Factorize(*observed, config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("factorized observed tensor, relative error %.4f\n\n",
              static_cast<double>(result->final_error) /
                  static_cast<double>(observed->NumNonZeros()));

  // Predicted links = reconstruction cells. A held-out link is recovered if
  // the reconstruction turns it on even though it was hidden from training.
  auto recon = ReconstructTensor(result->a, result->b, result->c);
  if (!recon.ok()) return 1;
  std::int64_t recovered = 0;
  for (const Coord& c : held_out) {
    if (recon->Contains(c.i, c.j, c.k)) ++recovered;
  }
  // New predictions: reconstruction cells that were not observed.
  std::int64_t new_predictions = 0;
  for (const Coord& c : recon->entries()) {
    if (!observed->Contains(c.i, c.j, c.k)) ++new_predictions;
  }
  const double recall = held_out.empty()
                            ? 0.0
                            : static_cast<double>(recovered) /
                                  static_cast<double>(held_out.size());
  const double precision =
      new_predictions == 0 ? 0.0
                           : static_cast<double>(recovered) /
                                 static_cast<double>(new_predictions);
  // Random baseline: picking new_predictions random zero cells would hit
  // held-out links at rate |held_out| / (cells - |observed|).
  const double cells = static_cast<double>(truth.dim_i()) *
                       static_cast<double>(truth.dim_j()) *
                       static_cast<double>(truth.dim_k());
  const double random_precision =
      static_cast<double>(held_out.size()) /
      (cells - static_cast<double>(observed->NumNonZeros()));

  std::printf("held-out link recovery: %lld / %zu (recall %.2f)\n",
              static_cast<long long>(recovered), held_out.size(), recall);
  std::printf("precision of new predictions: %.3f (random baseline %.5f)\n",
              precision, random_precision);
  if (precision > 10 * random_precision) {
    std::printf("=> Boolean CP factors generalize to unseen links.\n");
  }
  return 0;
}
