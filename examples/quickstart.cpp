// Quickstart: factorize a small Boolean tensor with DBTF.
//
// Builds a planted rank-4 binary tensor with noise, runs the distributed
// Boolean CP factorization, and prints the per-iteration error trace, the
// communication ledger, and the recovered factor quality.
//
//   ./examples/quickstart

#include <cstdio>

#include "dbtf/dbtf.h"
#include "eval/metrics.h"
#include "generator/generator.h"

int main() {
  using namespace dbtf;

  // 1. A 64x64x64 binary tensor with 4 planted Boolean concepts plus noise.
  PlantedSpec spec;
  spec.dim_i = 64;
  spec.dim_j = 64;
  spec.dim_k = 64;
  spec.rank = 4;
  spec.factor_density = 0.12;
  spec.additive_noise = 0.05;     // 5% spurious 1s
  spec.destructive_noise = 0.05;  // 5% missing 1s
  spec.seed = 2026;
  auto planted = GeneratePlanted(spec);
  if (!planted.ok()) {
    std::fprintf(stderr, "generator: %s\n",
                 planted.status().ToString().c_str());
    return 1;
  }
  const SparseTensor& x = planted->tensor;
  std::printf("tensor: %lld x %lld x %lld, %lld non-zeros (density %.4f)\n",
              static_cast<long long>(x.dim_i()),
              static_cast<long long>(x.dim_j()),
              static_cast<long long>(x.dim_k()),
              static_cast<long long>(x.NumNonZeros()), x.Density());

  // 2. Factorize: rank 4, up to 10 iterations, 8 initial factor sets, a
  //    simulated 8-machine cluster with 8 partitions per unfolded tensor.
  DbtfConfig config;
  config.rank = 4;
  config.max_iterations = 10;
  config.num_initial_sets = 8;
  config.num_partitions = 8;
  config.cluster.num_machines = 8;
  config.seed = 1;
  auto result = Dbtf::Factorize(x, config);
  if (!result.ok()) {
    std::fprintf(stderr, "factorize: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 3. Inspect the run.
  std::printf("\niteration errors (|X xor recon|):");
  for (const std::int64_t e : result->iteration_errors) {
    std::printf(" %lld", static_cast<long long>(e));
  }
  std::printf("\nconverged: %s after %d iterations\n",
              result->converged ? "yes" : "no", result->iterations_run);
  std::printf("relative error: %.4f\n",
              static_cast<double>(result->final_error) /
                  static_cast<double>(x.NumNonZeros()));
  std::printf("simulated cluster: %lld partitions, makespan %.3fs, %s\n",
              static_cast<long long>(result->partitions_used),
              result->virtual_seconds, result->comm.ToString().c_str());

  // 4. Compare the recovered factors against the planted ground truth.
  auto score_a = FactorMatchScore(planted->a, result->a);
  auto score_b = FactorMatchScore(planted->b, result->b);
  auto score_c = FactorMatchScore(planted->c, result->c);
  if (score_a.ok() && score_b.ok() && score_c.ok()) {
    std::printf("factor match vs planted truth (Jaccard): A=%.2f B=%.2f C=%.2f\n",
                *score_a, *score_b, *score_c);
  }
  return 0;
}
