// Model-order selection and Boolean Tucker refinement.
//
// How many Boolean concepts does a dataset contain? This example scans
// candidate ranks with the MDL criterion (model bits + residual bits),
// factorizes at the selected rank, and then refits the same data with a
// Boolean Tucker core of the same budget to expose cross-concept structure
// that CP cannot represent.
//
//   ./examples/rank_selection

#include <cstdio>

#include "dbtf/dbtf.h"
#include "generator/generator.h"
#include "modelselect/rank_selection.h"
#include "tucker/tucker.h"

int main() {
  using namespace dbtf;

  // Data with an unknown (to the analyst) number of planted concepts: 5.
  PlantedSpec spec;
  spec.dim_i = 48;
  spec.dim_j = 48;
  spec.dim_k = 48;
  spec.rank = 5;
  spec.factor_density = 0.12;
  spec.additive_noise = 0.05;
  spec.destructive_noise = 0.05;
  spec.seed = 6061;
  auto planted = GeneratePlanted(spec);
  if (!planted.ok()) {
    std::fprintf(stderr, "%s\n", planted.status().ToString().c_str());
    return 1;
  }
  const SparseTensor& x = planted->tensor;
  std::printf("tensor: 48^3, %lld non-zeros; true concept count hidden\n\n",
              static_cast<long long>(x.NumNonZeros()));

  // 1. MDL rank scan.
  DbtfConfig config;
  config.max_iterations = 8;
  config.num_initial_sets = 6;
  config.num_partitions = 8;
  config.cluster.num_machines = 8;
  config.seed = 11;
  auto selection = EstimateBooleanRank(x, 16, config);
  if (!selection.ok()) {
    std::fprintf(stderr, "%s\n", selection.status().ToString().c_str());
    return 1;
  }
  std::printf("rank   MDL bits     error\n");
  for (std::size_t t = 0; t < selection->ranks.size(); ++t) {
    std::printf("%4lld   %10.0f   %lld%s\n",
                static_cast<long long>(selection->ranks[t]),
                selection->total_bits[t],
                static_cast<long long>(selection->errors[t]),
                selection->ranks[t] == selection->best_rank ? "   <= best"
                                                            : "");
  }
  std::printf("\nMDL selects rank %lld (planted: %lld)\n\n",
              static_cast<long long>(selection->best_rank),
              static_cast<long long>(spec.rank));

  // 2. Boolean Tucker refit with the same per-mode budget.
  TuckerConfig tucker;
  tucker.core_p = selection->best_rank;
  tucker.core_q = selection->best_rank;
  tucker.core_r = selection->best_rank;
  if (tucker.core_p > 8) tucker.core_p = tucker.core_q = tucker.core_r = 8;
  tucker.max_iterations = 8;
  tucker.num_restarts = 6;
  tucker.seed = 11;
  auto refined = BooleanTucker(x, tucker);
  if (!refined.ok()) {
    std::fprintf(stderr, "%s\n", refined.status().ToString().c_str());
    return 1;
  }
  std::printf("Boolean Tucker (%lldx%lldx%lld core): error %lld, core has "
              "%lld couplings (diagonal would be %lld)\n",
              static_cast<long long>(tucker.core_p),
              static_cast<long long>(tucker.core_q),
              static_cast<long long>(tucker.core_r),
              static_cast<long long>(refined->final_error),
              static_cast<long long>(refined->core.NumNonZeros()),
              static_cast<long long>(tucker.core_p));
  return 0;
}
